"""Unit tests for the MQB information models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.descendants import descendant_values, one_step_descendant_values
from repro.errors import ConfigurationError
from repro.schedulers.info import (
    ExactInformation,
    ExponentialInformation,
    NoisyInformation,
)


class TestLabels:
    def test_full_labels(self):
        assert ExactInformation().full_label() == "all+pre"
        assert ExactInformation(one_step=True).full_label() == "1step+pre"
        assert ExponentialInformation().full_label() == "all+exp"
        assert NoisyInformation(one_step=True).full_label() == "1step+noise"


class TestExact:
    def test_matches_descendant_values(self, fig1_job):
        d = ExactInformation().descendant_matrix(fig1_job, None)
        np.testing.assert_allclose(d, descendant_values(fig1_job))

    def test_one_step_matches(self, fig1_job):
        d = ExactInformation(one_step=True).descendant_matrix(fig1_job, None)
        np.testing.assert_allclose(d, one_step_descendant_values(fig1_job))


class TestExponential:
    def test_requires_rng(self, fig1_job):
        with pytest.raises(ConfigurationError, match="rng"):
            ExponentialInformation().descendant_matrix(fig1_job, None)

    def test_preserves_zeros(self, fig1_job):
        rng = np.random.default_rng(1)
        true = descendant_values(fig1_job)
        est = ExponentialInformation().descendant_matrix(fig1_job, rng)
        assert np.all(est[true == 0.0] == 0.0)

    def test_mean_approaches_true_value(self, fig1_job):
        rng = np.random.default_rng(2)
        info = ExponentialInformation()
        true = descendant_values(fig1_job)
        samples = np.mean(
            [info.descendant_matrix(fig1_job, rng) for _ in range(3000)], axis=0
        )
        np.testing.assert_allclose(samples, true, rtol=0.1, atol=0.05)

    def test_nonnegative(self, fig1_job):
        est = ExponentialInformation().descendant_matrix(
            fig1_job, np.random.default_rng(3)
        )
        assert np.all(est >= 0.0)


class TestNoisy:
    def test_requires_rng(self, fig1_job):
        with pytest.raises(ConfigurationError, match="rng"):
            NoisyInformation().descendant_matrix(fig1_job, None)

    def test_within_noise_envelope(self, fig1_job):
        rng = np.random.default_rng(4)
        true = descendant_values(fig1_job)
        w_avg = float(fig1_job.work.mean())
        est = NoisyInformation().descendant_matrix(fig1_job, rng)
        assert np.all(est >= 0.5 * true - 1e-12)
        assert np.all(est <= 1.5 * true + w_avg + 1e-12)

    def test_additive_term_makes_zeros_positive(self, fig1_job):
        rng = np.random.default_rng(5)
        true = descendant_values(fig1_job)
        est = NoisyInformation().descendant_matrix(fig1_job, rng)
        # With prob 1 the uniform additive draws are positive.
        assert np.all(est[true == 0.0] >= 0.0)
        assert est[true == 0.0].mean() > 0.0
