"""Unit tests for the flexible-type (JIT) extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, validate_schedule
from repro.errors import GraphError, ResourceError, SchedulingError
from repro.flexible import (
    FlexDag,
    FlexGreedy,
    FlexMQB,
    flexible_lower_bound,
    simulate_flexible,
)

INF = float("inf")


class TestFlexDag:
    def test_basic(self):
        fd = FlexDag([[1.0, 2.0], [INF, 3.0]], edges=[(0, 1)])
        assert fd.n_tasks == 2
        assert fd.num_types == 2
        assert list(fd.permitted(0)) == [0, 1]
        assert list(fd.permitted(1)) == [1]
        assert fd.min_work(0) == 1.0

    def test_rejects_all_forbidden_row(self):
        with pytest.raises(GraphError, match="no permitted type"):
            FlexDag([[1.0, 2.0], [INF, INF]])

    def test_rejects_nonpositive(self):
        with pytest.raises(GraphError, match="positive"):
            FlexDag([[0.0, 2.0]])

    def test_rejects_nan(self):
        with pytest.raises(GraphError, match="NaN"):
            FlexDag([[float("nan"), 2.0]])

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError):
            FlexDag([1.0, 2.0])

    def test_structure_delegation(self):
        fd = FlexDag([[1.0, INF], [INF, 1.0], [1.0, 1.0]], edges=[(0, 2), (1, 2)])
        assert list(fd.children(0)) == [2]
        assert list(fd.parents(2)) == [0, 1]
        assert list(fd.sources()) == [0, 1]

    def test_work_read_only(self):
        fd = FlexDag([[1.0, 2.0]])
        with pytest.raises(ValueError):
            fd.work[0, 0] = 9.0


class TestFromKDag:
    def make_job(self):
        return KDag(types=[0, 1, 0], work=[2.0, 3.0, 4.0],
                    edges=[(0, 1), (1, 2)], num_types=2)

    def test_zero_flexibility_is_rigid(self):
        fd = FlexDag.from_kdag(self.make_job())
        for v in range(3):
            assert fd.permitted(v).size == 1

    def test_full_flexibility_permits_everything(self):
        fd = FlexDag.from_kdag(
            self.make_job(), flexibility=1.0,
            rng=np.random.default_rng(0), penalty=2.0,
        )
        for v in range(3):
            assert fd.permitted(v).size == 2
        # Native cost preserved, fallback at penalty.
        assert fd.work[0, 0] == 2.0
        assert fd.work[0, 1] == 4.0

    def test_requires_rng_when_flexible(self):
        with pytest.raises(GraphError, match="rng"):
            FlexDag.from_kdag(self.make_job(), flexibility=0.5)

    def test_invalid_flexibility(self):
        with pytest.raises(GraphError):
            FlexDag.from_kdag(self.make_job(), flexibility=1.5,
                              rng=np.random.default_rng(0))

    def test_invalid_penalty(self):
        with pytest.raises(GraphError):
            FlexDag.from_kdag(self.make_job(), flexibility=1.0,
                              rng=np.random.default_rng(0), penalty=0.0)


class TestLowerBound:
    def test_span_term(self):
        fd = FlexDag([[2.0, 4.0], [3.0, 6.0]], edges=[(0, 1)])
        # Fastest chain: 2 + 3 = 5; capacity term: 5 / 4 = 1.25.
        assert flexible_lower_bound(fd, [2, 2]) == 5.0

    def test_capacity_term(self):
        fd = FlexDag([[2.0, 2.0]] * 8)
        # 16 total min work on 2 processors -> 8.
        assert flexible_lower_bound(fd, [1, 1]) == 8.0

    def test_invalid_processors(self):
        fd = FlexDag([[1.0, 1.0]])
        with pytest.raises(ResourceError):
            flexible_lower_bound(fd, [1])


class TestEngine:
    def test_single_task_picks_fastest_type(self):
        fd = FlexDag([[5.0, 2.0]])
        res = simulate_flexible(fd, ResourceConfig((1, 1)), FlexGreedy())
        assert res.makespan == 2.0
        assert res.type_choices[0] == 1

    def test_forbidden_type_never_used(self):
        fd = FlexDag([[INF, 3.0], [INF, 2.0]])
        res = simulate_flexible(fd, ResourceConfig((5, 1)), FlexGreedy())
        assert np.all(res.type_choices == 1)
        assert res.makespan == 5.0  # serialized on the single type-1 proc

    def test_trace_is_valid_kdag_schedule(self):
        """The realized schedule is legal w.r.t. the chosen types."""
        fd = FlexDag(
            [[2.0, 3.0], [4.0, 1.0], [2.0, 2.0], [1.0, INF]],
            edges=[(0, 2), (1, 2), (2, 3)],
        )
        system = ResourceConfig((1, 1))
        res = simulate_flexible(fd, system, FlexGreedy(), record_trace=True)
        realized = KDag(
            types=res.type_choices,
            work=[fd.work[v, res.type_choices[v]] for v in range(fd.n_tasks)],
            edges=[tuple(e) for e in fd.edges],
            num_types=2,
        )
        validate_schedule(realized, system, res.trace, res.makespan)

    def test_ratio_at_least_one(self):
        fd = FlexDag([[2.0, 3.0]] * 6, edges=[(0, 5)])
        for sched in (FlexGreedy(), FlexMQB()):
            res = simulate_flexible(fd, ResourceConfig((2, 2)), sched)
            assert res.completion_time_ratio() >= 1.0 - 1e-9

    def test_k_mismatch_rejected(self):
        fd = FlexDag([[1.0, 1.0]])
        with pytest.raises(SchedulingError):
            simulate_flexible(fd, ResourceConfig((1,)), FlexGreedy())


class TestSchedulers:
    def test_greedy_prefers_fast_pair(self):
        # Two ready tasks, one processor per type: fastest pair first.
        fd = FlexDag([[1.0, 10.0], [10.0, 2.0]])
        res = simulate_flexible(fd, ResourceConfig((1, 1)), FlexGreedy())
        assert res.type_choices[0] == 0
        assert res.type_choices[1] == 1
        assert res.makespan == 2.0

    def test_flexmqb_valid_on_lifted_jobs(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=25, k=3)
        fd = FlexDag.from_kdag(job, flexibility=0.5,
                               rng=np.random.default_rng(1))
        system = ResourceConfig((2, 2, 2))
        res = simulate_flexible(fd, system, FlexMQB(), record_trace=True)
        realized = KDag(
            types=res.type_choices,
            work=[fd.work[v, res.type_choices[v]] for v in range(fd.n_tasks)],
            edges=[tuple(e) for e in fd.edges],
            num_types=3,
        )
        validate_schedule(realized, system, res.trace, res.makespan)

    def test_flexibility_helps_greedy(self):
        """Full flexibility can only shorten FlexGreedy's makespan on a
        type-starved job."""
        # All tasks native to type 0; only 1 type-0 proc but 3 type-1.
        job = KDag(types=[0] * 6, work=[2.0] * 6, num_types=2)
        system = ResourceConfig((1, 3))
        rigid = simulate_flexible(FlexDag.from_kdag(job), system, FlexGreedy())
        flex = simulate_flexible(
            FlexDag.from_kdag(job, flexibility=1.0,
                              rng=np.random.default_rng(0), penalty=1.5),
            system, FlexGreedy(),
        )
        assert flex.makespan < rigid.makespan
