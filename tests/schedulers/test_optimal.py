"""Unit tests for the exact optimal scheduler (unit-work A*)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, lower_bound, make_scheduler, simulate
from repro.errors import ConfigurationError
from repro.schedulers.optimal import optimal_makespan
from repro.workloads.adversarial import (
    adversarial_job,
    adversarial_optimal_makespan,
)


def unit_job(types, edges=(), num_types=None):
    return KDag(
        types=types, work=[1.0] * len(types), edges=edges, num_types=num_types
    )


class TestSmallCases:
    def test_single_task(self):
        job = unit_job([0])
        assert optimal_makespan(job, ResourceConfig((1,))) == 1

    def test_chain(self):
        job = unit_job([0, 1, 0], edges=[(0, 1), (1, 2)], num_types=2)
        assert optimal_makespan(job, ResourceConfig((3, 3))) == 3

    def test_independent_parallel(self):
        job = unit_job([0] * 6)
        assert optimal_makespan(job, ResourceConfig((2,))) == 3
        assert optimal_makespan(job, ResourceConfig((6,))) == 1

    def test_diamond(self):
        job = unit_job([0, 1, 1, 0], edges=[(0, 1), (0, 2), (1, 3), (2, 3)],
                       num_types=2)
        assert optimal_makespan(job, ResourceConfig((1, 2))) == 3
        assert optimal_makespan(job, ResourceConfig((1, 1))) == 4

    def test_interleaving_beats_greedy_ordering(self):
        """A case where the choice of which ready task to run matters:
        running the 'active' task first is strictly better."""
        # 0 and 1 are type-0; only 0 unlocks the type-1 chain 2 -> 3.
        # Optimal runs 0 first (t0), then 1 || 2 (t1), then 3 (t2) -> 3.
        # Running 1 before 0 forces 4 steps, so the choice matters.
        job = unit_job([0, 0, 1, 1], edges=[(0, 2), (2, 3)], num_types=2)
        assert optimal_makespan(job, ResourceConfig((1, 1))) == 3


class TestAgainstBounds:
    def test_at_least_lower_bound_random(self, rng):
        for i in range(8):
            n = int(rng.integers(4, 12))
            k = int(rng.integers(1, 3)) + 1
            types = rng.integers(0, k, n)
            edges = [
                (i2, j)
                for i2 in range(n)
                for j in range(i2 + 1, n)
                if rng.random() < 0.2
            ]
            job = unit_job(types, edges, num_types=k)
            system = ResourceConfig(tuple(int(x) for x in rng.integers(1, 3, k)))
            opt = optimal_makespan(job, system)
            assert opt >= lower_bound(job, system.as_array()) - 1e-9

    def test_heuristics_never_beat_optimal(self, rng):
        for i in range(5):
            n = int(rng.integers(5, 11))
            types = rng.integers(0, 2, n)
            edges = [
                (a, b)
                for a in range(n)
                for b in range(a + 1, n)
                if rng.random() < 0.25
            ]
            job = unit_job(types, edges, num_types=2)
            system = ResourceConfig((2, 1))
            opt = optimal_makespan(job, system)
            for name in ("kgreedy", "mqb", "lspan"):
                res = simulate(job, system, make_scheduler(name),
                               rng=np.random.default_rng(i))
                assert res.makespan >= opt - 1e-9

    def test_adversarial_construction_formula(self, rng):
        """The paper's claimed T* = K - 1 + m P_K is exactly optimal."""
        procs = (1, 2)
        m = 2
        for i in range(3):
            job = adversarial_job(procs, m, np.random.default_rng(i))
            opt = optimal_makespan(job, ResourceConfig(procs))
            assert opt == adversarial_optimal_makespan(procs, m)


class TestValidation:
    def test_rejects_non_unit_work(self):
        job = KDag(types=[0], work=[2.0])
        with pytest.raises(ConfigurationError, match="unit-work"):
            optimal_makespan(job, ResourceConfig((1,)))

    def test_rejects_large_jobs(self):
        job = unit_job([0] * 30)
        with pytest.raises(ConfigurationError, match="exceeds"):
            optimal_makespan(job, ResourceConfig((2,)))

    def test_rejects_k_mismatch(self):
        job = unit_job([0])
        with pytest.raises(ConfigurationError, match="disagree"):
            optimal_makespan(job, ResourceConfig((1, 1)))

    def test_state_budget(self):
        job = unit_job([0] * 14)
        with pytest.raises(ConfigurationError, match="expansions"):
            optimal_makespan(job, ResourceConfig((2,)), max_states=2)
