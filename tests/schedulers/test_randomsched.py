"""Unit tests for the RandomChoice control scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, simulate, validate_schedule
from repro.errors import SchedulingError
from repro.schedulers.randomsched import RandomChoice


class TestBehaviour:
    def test_requires_rng(self):
        job = KDag(types=[0], work=[1.0])
        with pytest.raises(SchedulingError, match="rng"):
            simulate(job, ResourceConfig((1,)), RandomChoice())

    def test_seed_deterministic(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=30, k=2)
        system = ResourceConfig((2, 2))
        a = simulate(job, system, RandomChoice(), rng=np.random.default_rng(5))
        b = simulate(job, system, RandomChoice(), rng=np.random.default_rng(5))
        assert a.makespan == b.makespan

    def test_different_seeds_vary(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=40, k=2)
        system = ResourceConfig((1, 1))
        spans = {
            simulate(
                job, system, RandomChoice(), rng=np.random.default_rng(s)
            ).makespan
            for s in range(8)
        }
        assert len(spans) > 1  # the choice actually varies

    def test_selection_removes_from_pool(self):
        job = KDag(types=[0, 0, 0], work=[1.0] * 3)
        s = RandomChoice()
        s.prepare(job, ResourceConfig((1,)), np.random.default_rng(0))
        for t in range(3):
            s.task_ready(t, 0.0, 1.0)
        picked = []
        while s.pending(0):
            picked += s.select(0, 1, 0.0)
        assert sorted(picked) == [0, 1, 2]

    def test_valid_schedules(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=25, k=3)
        system = ResourceConfig((2, 1, 2))
        res = simulate(job, system, RandomChoice(),
                       rng=np.random.default_rng(1), record_trace=True)
        validate_schedule(job, system, res.trace, res.makespan)

    def test_registry_name(self):
        from repro import make_scheduler

        assert make_scheduler("random").name == "random"
        assert RandomChoice.requires_offline is False
