"""Unit tests for the shifting-bottleneck scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, simulate, validate_schedule
from repro.schedulers.shiftbt import ShiftBT, edd_max_lateness_schedule, top_levels


class TestTopLevels:
    def test_sources_release_at_zero(self, diamond_job):
        rel = top_levels(diamond_job)
        assert rel[0] == 0.0

    def test_chain_releases_accumulate(self, chain_job):
        assert list(top_levels(chain_job)) == [0.0, 1.0, 2.0]

    def test_diamond_takes_longest_predecessor_path(self, diamond_job):
        rel = top_levels(diamond_job)
        # 3's release: max(1+2, 1+3) = 4.
        assert rel[3] == 4.0


class TestEDDSubproblem:
    def test_empty(self):
        seq, ml = edd_max_lateness_schedule(
            np.array([], dtype=np.int64), np.zeros(0), np.zeros(0), np.zeros(0), 2
        )
        assert seq == []
        assert ml == float("-inf")

    def test_single_machine_orders_by_due_date(self):
        tasks = np.array([0, 1, 2])
        release = np.zeros(3)
        due = np.array([5.0, 1.0, 3.0])
        work = np.array([1.0, 1.0, 1.0])
        seq, ml = edd_max_lateness_schedule(tasks, release, due, work, 1)
        assert seq == [1, 2, 0]
        # Completions 1, 2, 3 minus dues 1, 3, 5: max lateness 0.
        assert ml == 0.0

    def test_release_times_delay_tasks(self):
        tasks = np.array([0, 1])
        release = np.array([5.0, 0.0])
        due = np.array([0.0, 10.0])
        work = np.array([1.0, 1.0])
        seq, ml = edd_max_lateness_schedule(tasks, release, due, work, 1)
        # Task 0 has the earlier due date but is not released; 1 first.
        assert seq == [1, 0]
        assert ml == pytest.approx(6.0)  # 0 completes at 6, due 0

    def test_multiple_machines(self):
        tasks = np.arange(4)
        release = np.zeros(4)
        due = np.array([1.0, 1.0, 1.0, 1.0])
        work = np.array([2.0, 2.0, 2.0, 2.0])
        _, ml = edd_max_lateness_schedule(tasks, release, due, work, 2)
        # Two waves of 2: completions 2, 2, 4, 4 -> max lateness 3.
        assert ml == pytest.approx(3.0)

    def test_machine_count_validation(self):
        with pytest.raises(ValueError):
            edd_max_lateness_schedule(
                np.array([0]), np.zeros(1), np.zeros(1), np.ones(1), 0
            )


class TestShiftBT:
    def test_bottleneck_order_covers_all_types(self, fig1_job):
        s = ShiftBT()
        s.prepare(fig1_job, ResourceConfig((1, 1, 1)))
        assert sorted(s.bottleneck_order) == [0, 1, 2]

    def test_most_loaded_type_is_first_bottleneck(self):
        # Type 0 carries a long chain; type 1 a single task.
        job = KDag(
            types=[0, 0, 0, 0, 1],
            work=[3.0, 3.0, 3.0, 3.0, 1.0],
            edges=[(0, 1), (1, 2), (2, 3)],
            num_types=2,
        )
        s = ShiftBT()
        s.prepare(job, ResourceConfig((1, 1)))
        assert s.bottleneck_order[0] == 0

    def test_runtime_differs_from_lspan_via_releases(self):
        """ShiftBT's frozen sequence accounts for release times."""
        # Both heads same type. Task 2 has the longer remaining span
        # (LSpan would pick it) but a later release is irrelevant for
        # heads; craft deeper: two tasks with dues favoring 0 but
        # releases favoring 2's subtree.
        job = KDag(
            types=[0, 1, 0, 1, 1],
            work=[4.0, 1.0, 1.0, 1.0, 1.0],
            edges=[(0, 1), (2, 3), (3, 4)],
            num_types=2,
        )
        s = ShiftBT()
        s.prepare(job, ResourceConfig((1, 1)))
        res = simulate(job, ResourceConfig((1, 1)), ShiftBT(), record_trace=True)
        validate_schedule(job, ResourceConfig((1, 1)), res.trace, res.makespan)

    def test_produces_valid_schedules(self, rng):
        from tests.conftest import make_random_job

        for i in range(3):
            job = make_random_job(rng, n=30, k=3)
            system = ResourceConfig((1, 2, 2))
            res = simulate(job, system, ShiftBT(), record_trace=True)
            validate_schedule(job, system, res.trace, res.makespan)

    def test_handles_absent_types(self):
        """A job using fewer types than K must still schedule."""
        job = KDag(types=[0, 0], work=[1.0, 1.0], num_types=3)
        res = simulate(job, ResourceConfig((2, 1, 1)), ShiftBT())
        assert res.makespan == 1.0
