"""Unit tests for the Scheduler / QueueScheduler base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig
from repro.errors import SchedulingError
from repro.schedulers.base import QueueScheduler, Scheduler


class Fifo(QueueScheduler):
    name = "fifo-test"

    def priorities(self, job):
        return np.zeros(job.n_tasks)


class BadShape(QueueScheduler):
    name = "bad-shape"

    def priorities(self, job):
        return np.zeros(job.n_tasks + 3)


class TestSchedulerBase:
    def test_job_access_before_prepare(self):
        s = Fifo()
        with pytest.raises(SchedulingError, match="before prepare"):
            _ = s.job
        with pytest.raises(SchedulingError, match="before prepare"):
            _ = s.resources

    def test_prepare_k_mismatch(self):
        job = KDag(types=[0], work=[1.0], num_types=2)
        with pytest.raises(SchedulingError, match="resource types"):
            Fifo().prepare(job, ResourceConfig((1,)))

    def test_priorities_shape_checked(self):
        job = KDag(types=[0], work=[1.0])
        with pytest.raises(SchedulingError, match="shape"):
            BadShape().prepare(job, ResourceConfig((1,)))

    def test_default_assign_visits_all_types(self):
        job = KDag(types=[0, 1, 1], work=[1.0] * 3, num_types=2)
        s = Fifo()
        s.prepare(job, ResourceConfig((1, 1)))
        for t in range(3):
            s.task_ready(t, 0.0, 1.0)
        chosen = s.assign([1, 1], 0.0)
        assert sorted(int(job.types[t]) for t in chosen) == [0, 1]

    def test_default_assign_skips_empty_and_full(self):
        job = KDag(types=[0, 1], work=[1.0, 1.0], num_types=2)
        s = Fifo()
        s.prepare(job, ResourceConfig((1, 1)))
        s.task_ready(0, 0.0, 1.0)
        # No free type-0 slots -> nothing from queue 0.
        assert s.assign([0, 1], 0.0) == []

    def test_assign_guards_against_overcommitting_select(self):
        class Greedy(Fifo):
            def select(self, alpha, n_slots, time):
                # Misbehave: return everything regardless of slots.
                out = super().select(alpha, 999, time)
                return out

        job = KDag(types=[0, 0, 0], work=[1.0] * 3, num_types=1)
        s = Greedy()
        s.prepare(job, ResourceConfig((1,)))
        for t in range(3):
            s.task_ready(t, 0.0, 1.0)
        with pytest.raises(SchedulingError, match="returned 3 tasks"):
            s.assign([1], 0.0)

    def test_capacity_changed_default_is_noop(self):
        # The fault engine calls this hook on every FAIL/REPAIR; the
        # base implementation must accept it silently so schedulers
        # that ignore capacity changes keep working.
        job = KDag(types=[0], work=[1.0], num_types=1)
        s = Fifo()
        s.prepare(job, ResourceConfig((2,)))
        s.task_ready(0, 0.0, 1.0)
        assert s.capacity_changed(0, 1, 0.5) is None
        assert s.assign([1], 1.0) == [0]

    def test_assign_guards_against_empty_select(self):
        class Lazy(Fifo):
            def select(self, alpha, n_slots, time):
                return []

        job = KDag(types=[0], work=[1.0], num_types=1)
        s = Lazy()
        s.prepare(job, ResourceConfig((1,)))
        s.task_ready(0, 0.0, 1.0)
        with pytest.raises(SchedulingError, match="returned no task"):
            s.assign([1], 0.0)


class TestQueueSchedulerOrdering:
    def test_priority_then_fifo(self):
        class ByWork(QueueScheduler):
            name = "bywork"

            def priorities(self, job):
                return job.work.copy()

        job = KDag(types=[0, 0, 0], work=[3.0, 1.0, 1.0], num_types=1)
        s = ByWork()
        s.prepare(job, ResourceConfig((1,)))
        s.task_ready(0, 0.0, 3.0)
        s.task_ready(2, 0.0, 1.0)
        s.task_ready(1, 0.0, 1.0)
        # Lower key first; equal keys in arrival order (2 before 1).
        assert s.select(0, 3, 0.0) == [2, 1, 0]

    def test_sticky_seq_across_requeue(self):
        job = KDag(types=[0, 0], work=[2.0, 2.0], num_types=1)
        s = Fifo()
        s.prepare(job, ResourceConfig((1,)))
        s.task_ready(0, 0.0, 2.0)
        assert s.select(0, 1, 0.0) == [0]
        s.task_ready(1, 0.5, 2.0)
        s.task_ready(0, 1.0, 1.0)  # re-announced later but keeps rank
        assert s.select(0, 2, 1.0) == [0, 1]
