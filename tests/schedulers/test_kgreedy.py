"""Unit tests for the online KGreedy scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, simulate
from repro.schedulers.kgreedy import KGreedy
from repro.theory.bounds import kgreedy_competitive_ratio


class TestPolicy:
    def test_fifo_order(self, two_type_system):
        job = KDag(types=[0, 0, 0], work=[1.0] * 3, num_types=2)
        s = KGreedy()
        s.prepare(job, two_type_system)
        s.task_ready(2, 0.0, 1.0)
        s.task_ready(0, 0.0, 1.0)
        s.task_ready(1, 0.0, 1.0)
        assert s.select(0, 2, 0.0) == [2, 0]
        assert s.select(0, 2, 0.0) == [1]

    def test_pending_per_type(self, two_type_system):
        job = KDag(types=[0, 1], work=[1.0, 1.0], num_types=2)
        s = KGreedy()
        s.prepare(job, two_type_system)
        s.task_ready(0, 0.0, 1.0)
        assert s.pending(0) == 1
        assert s.pending(1) == 0

    def test_sticky_requeue_keeps_position(self, two_type_system):
        """A re-announced (preempted) task outranks later arrivals."""
        job = KDag(types=[0, 0, 0], work=[2.0] * 3, num_types=2)
        s = KGreedy()
        s.prepare(job, two_type_system)
        s.task_ready(0, 0.0, 2.0)
        assert s.select(0, 1, 0.0) == [0]
        s.task_ready(1, 1.0, 2.0)   # arrives while 0 runs
        s.task_ready(0, 1.0, 1.0)   # 0 preempted, re-announced
        assert s.select(0, 1, 1.0) == [0]

    def test_is_online(self):
        assert KGreedy.requires_offline is False

    def test_prepare_resets_state(self, two_type_system):
        job = KDag(types=[0], work=[1.0], num_types=2)
        s = KGreedy()
        s.prepare(job, two_type_system)
        s.task_ready(0, 0.0, 1.0)
        s.prepare(job, two_type_system)
        assert s.pending(0) == 0


class TestCompetitiveness:
    def test_respects_greedy_bound_on_random_jobs(self, rng):
        """Work conservation implies T <= sum_a T1a/Pa + span."""
        from tests.conftest import make_random_job
        from repro.core.properties import span, type_work

        for i in range(5):
            job = make_random_job(rng, n=40, k=3)
            system = ResourceConfig((2, 3, 1))
            res = simulate(job, system, KGreedy())
            bound = float(
                (type_work(job) / system.as_array()).sum() + span(job)
            )
            assert res.makespan <= bound + 1e-9

    def test_ratio_below_k_plus_one_on_random_jobs(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=50, k=4)
        res = simulate(job, ResourceConfig((2, 2, 2, 2)), KGreedy())
        assert res.completion_time_ratio() <= kgreedy_competitive_ratio(4) + 1e-9
