"""Unit tests for the scheduler registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.schedulers.registry import (
    APPROX_INFO_ALGORITHMS,
    PAPER_ALGORITHMS,
    available_schedulers,
    make_scheduler,
)


class TestMakeScheduler:
    @pytest.mark.parametrize("name", PAPER_ALGORITHMS)
    def test_paper_algorithms_construct(self, name):
        s = make_scheduler(name)
        assert s.name == name

    @pytest.mark.parametrize("name", APPROX_INFO_ALGORITHMS)
    def test_approx_info_algorithms_construct(self, name):
        s = make_scheduler(name)
        # mqb+all+pre is canonicalized to plain "mqb".
        expected = "mqb" if name == "mqb+all+pre" else name
        assert s.name == expected

    def test_every_advertised_name_constructs(self):
        for name in available_schedulers():
            make_scheduler(name)

    def test_names_are_case_insensitive(self):
        assert make_scheduler("MQB").name == "mqb"
        assert make_scheduler(" KGreedy ").name == "kgreedy"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            make_scheduler("heft")

    def test_malformed_mqb_variant(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("mqb+all+bogus")
        with pytest.raises(ConfigurationError):
            make_scheduler("mqb+2step+pre")

    def test_fresh_instance_per_call(self):
        assert make_scheduler("mqb") is not make_scheduler("mqb")

    def test_ablation_variants(self):
        assert make_scheduler("mqb[min]").name == "mqb[min]"
        assert make_scheduler("mqb[sum]").name == "mqb[sum]"
        assert make_scheduler("mqb[nocarry]").name == "mqb[nocarry]"


class TestCatalogs:
    def test_paper_lineup(self):
        assert PAPER_ALGORITHMS == (
            "kgreedy", "lspan", "dtype", "maxdp", "shiftbt", "mqb"
        )

    def test_fig8_lineup_has_seven_bars(self):
        assert len(APPROX_INFO_ALGORITHMS) == 7
        assert APPROX_INFO_ALGORITHMS[0] == "kgreedy"
