"""Admission control: token bucket, bounded queue, drain, telemetry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.protocol import ProtocolError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # one token at 2/s
        assert bucket.try_acquire() == 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_rejection_does_not_consume(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        bucket.try_acquire()
        first = bucket.try_acquire()
        second = bucket.try_acquire()
        assert first == pytest.approx(second)

    def test_default_burst(self):
        assert TokenBucket(rate=4.0).burst == 4.0
        assert TokenBucket(rate=0.5).burst == 1.0

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_admit_and_release(self):
        ctrl = AdmissionController(max_pending=2)
        with ctrl.admit():
            assert ctrl.pending == 1
        assert ctrl.pending == 0

    def test_queue_full(self):
        ctrl = AdmissionController(max_pending=1)
        ticket = ctrl.admit()
        with pytest.raises(ProtocolError) as excinfo:
            ctrl.admit()
        err = excinfo.value
        assert err.code == "queue_full"
        assert err.http_status == 429
        assert err.retry_after is not None and err.retry_after > 0
        ticket.release()
        ctrl.admit()  # slot freed

    def test_release_is_idempotent(self):
        ctrl = AdmissionController(max_pending=1)
        ticket = ctrl.admit()
        ticket.release()
        ticket.release()
        assert ctrl.pending == 0

    def test_rate_limited(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        ctrl = AdmissionController(max_pending=10, bucket=bucket)
        ctrl.admit().release()
        with pytest.raises(ProtocolError) as excinfo:
            ctrl.admit()
        err = excinfo.value
        assert err.code == "rate_limited"
        assert err.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        ctrl.admit()

    def test_queue_check_precedes_rate_limit(self):
        # A full queue must not burn rate tokens for requests it rejects.
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        ctrl = AdmissionController(max_pending=1, bucket=bucket)
        clock.advance(10.0)
        ticket = ctrl.admit()  # consumes the only token
        with pytest.raises(ProtocolError) as excinfo:
            ctrl.admit()
        assert excinfo.value.code == "queue_full"
        ticket.release()
        clock.advance(1.0)
        ctrl.admit()

    def test_draining_rejects_everything(self):
        ctrl = AdmissionController(max_pending=10)
        ctrl.start_draining()
        with pytest.raises(ProtocolError) as excinfo:
            ctrl.admit()
        err = excinfo.value
        assert err.code == "draining"
        assert err.http_status == 503

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_pending=0)

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        ctrl = AdmissionController(max_pending=1, telemetry=telemetry)
        ticket = ctrl.admit()
        with pytest.raises(ProtocolError):
            ctrl.admit()
        ticket.release()
        ctrl.start_draining()
        with pytest.raises(ProtocolError):
            ctrl.admit()
        counters = telemetry.snapshot().counters
        assert counters["admission.admitted"] == 1
        assert counters["admission.rejected.queue_full"] == 1
        assert counters["admission.rejected.draining"] == 1
