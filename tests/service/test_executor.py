"""Executor dedup: in-flight joining, the LRU response cache, errors."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.obs.telemetry import Telemetry
from repro.service.executor import ServiceExecutor, run_schedule_request
from repro.service.protocol import ProtocolError, ScheduleRequest

CELL = "small-layered-ep"


def make_executor(telemetry=None, work_fns=None, cache_entries=8):
    return ServiceExecutor(
        n_workers=0,
        cache_entries=cache_entries,
        telemetry=telemetry,
        work_fns=work_fns,
    )


class TestDedup:
    def test_concurrent_identical_requests_compute_once(self):
        """Two identical in-flight requests share one computation."""
        telemetry = Telemetry()
        calls = []
        release = threading.Event()

        def slow_work(payload: dict) -> dict:
            calls.append(payload["seed"])
            assert release.wait(timeout=30.0)
            return {"seed": payload["seed"]}

        executor = make_executor(telemetry, work_fns={"schedule": slow_work})
        request = ScheduleRequest(cell=CELL, seed=3)

        async def main():
            first = asyncio.ensure_future(executor.execute(request))
            # Let the first request reach the pool before the second
            # arrives, so the second deterministically joins it.
            while executor.in_flight == 0:
                await asyncio.sleep(0.001)
            second = asyncio.ensure_future(executor.execute(request))
            await asyncio.sleep(0.01)
            release.set()
            return await asyncio.gather(first, second)

        (r1, s1), (r2, s2) = asyncio.run(main())
        assert calls == [3]  # one computation, not two
        assert r1 == r2 == {"seed": 3}
        assert (s1, s2) == ("fresh", "joined")
        counters = telemetry.snapshot().counters
        assert counters["cache.misses"] == 1
        assert counters["dedup.joined"] == 1
        assert counters.get("cache.hits", 0) == 0

    def test_warm_repeat_is_cached(self):
        telemetry = Telemetry()
        calls = []

        def work(payload: dict) -> dict:
            calls.append(payload["seed"])
            return {"seed": payload["seed"]}

        executor = make_executor(telemetry, work_fns={"schedule": work})
        request = ScheduleRequest(cell=CELL, seed=5)

        async def main():
            first = await executor.execute(request)
            second = await executor.execute(request)
            return first, second

        (r1, s1), (r2, s2) = asyncio.run(main())
        assert calls == [5]
        assert (s1, s2) == ("fresh", "cached")
        assert r1 == r2
        counters = telemetry.snapshot().counters
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.writes"] == 1

    def test_different_fingerprints_do_not_dedup(self):
        calls = []

        def work(payload: dict) -> dict:
            calls.append(payload["seed"])
            return {"seed": payload["seed"]}

        executor = make_executor(work_fns={"schedule": work})

        async def main():
            await executor.execute(ScheduleRequest(cell=CELL, seed=1))
            await executor.execute(ScheduleRequest(cell=CELL, seed=2))

        asyncio.run(main())
        assert sorted(calls) == [1, 2]

    def test_lru_evicts_oldest(self):
        calls = []

        def work(payload: dict) -> dict:
            calls.append(payload["seed"])
            return {"seed": payload["seed"]}

        executor = make_executor(work_fns={"schedule": work}, cache_entries=2)

        async def main():
            for seed in (1, 2, 3):  # 3 evicts 1
                await executor.execute(ScheduleRequest(cell=CELL, seed=seed))
            _, source_2 = await executor.execute(ScheduleRequest(cell=CELL, seed=2))
            _, source_1 = await executor.execute(ScheduleRequest(cell=CELL, seed=1))
            return source_2, source_1

        source_2, source_1 = asyncio.run(main())
        assert source_2 == "cached"
        assert source_1 == "fresh"  # evicted, recomputed
        assert calls == [1, 2, 3, 1]


class TestErrors:
    def test_worker_failure_maps_to_internal(self):
        def broken(payload: dict) -> dict:
            raise RuntimeError("boom")

        executor = make_executor(work_fns={"schedule": broken})

        async def main():
            await executor.execute(ScheduleRequest(cell=CELL, seed=1))

        with pytest.raises(ProtocolError) as excinfo:
            asyncio.run(main())
        assert excinfo.value.code == "internal"
        assert "boom" in excinfo.value.message

    def test_errors_are_never_cached(self):
        telemetry = Telemetry()
        attempts = []

        def flaky(payload: dict) -> dict:
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return {"ok": True}

        executor = make_executor(telemetry, work_fns={"schedule": flaky})
        request = ScheduleRequest(cell=CELL, seed=1)

        async def main():
            with pytest.raises(ProtocolError):
                await executor.execute(request)
            return await executor.execute(request)

        result, source = asyncio.run(main())
        assert result == {"ok": True}
        assert source == "fresh"  # the failure did not poison the cache
        assert len(attempts) == 2
        counters = telemetry.snapshot().counters
        assert counters["exec.error.schedule"] == 1
        assert counters["exec.ok.schedule"] == 1


class TestRealWork:
    def test_schedule_work_fn_is_deterministic(self):
        payload = ScheduleRequest(cell=CELL, scheduler="mqb", seed=9).to_payload()
        a = run_schedule_request(payload)
        b = run_schedule_request(payload)
        assert a == b
        assert a["makespan"] > 0
        assert a["ratio"] >= 1.0

    def test_power_adds_energy_fields_without_changing_the_schedule(self):
        base = run_schedule_request(
            ScheduleRequest(cell=CELL, scheduler="kgreedy", seed=9).to_payload()
        )
        powered = run_schedule_request(
            ScheduleRequest(
                cell=CELL, scheduler="kgreedy", seed=9, power="shutdown"
            ).to_payload()
        )
        assert "energy" not in base
        assert powered["makespan"] == base["makespan"]
        assert powered["decisions"] == base["decisions"]
        energy = powered["energy"]
        assert energy["power"] == "shutdown"
        assert energy["total"] >= energy["busy"] > 0
        assert energy["total"] == pytest.approx(
            energy["busy"] + energy["idle"] + energy["sleep"] + energy["wake"]
        )
        assert energy["n_gaps"] >= energy["n_shutdowns"] >= 0

    def test_power_works_preemptively(self):
        result = run_schedule_request(
            ScheduleRequest(
                cell=CELL, scheduler="mqb", seed=2, preemptive=True,
                power="baseline",
            ).to_payload()
        )
        assert result["energy"]["total"] > 0

    def test_power_with_decentral_scheduler_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            run_schedule_request(
                ScheduleRequest(
                    cell=CELL, scheduler="dkgreedy", power="baseline"
                ).to_payload()
            )
        assert excinfo.value.code == "bad_request"
        assert "energy" in excinfo.value.message

    def test_sweep_runs_through_shared_pool_path(self):
        """The built-in sweep path (no injected work fn) shards itself."""
        telemetry = Telemetry()
        executor = make_executor(telemetry)
        from repro.service.protocol import SweepRequest

        request = SweepRequest(
            cell=CELL, algorithms=("kgreedy", "mqb"), n_instances=3, seed=4
        )

        async def main():
            return await executor.execute(request)

        result, source = asyncio.run(main())
        assert source == "fresh"
        assert [s["key"] for s in result["series"]] == ["kgreedy", "mqb"]
        assert all(s["n"] == 3 for s in result["series"])
        assert telemetry.snapshot().counters["exec.ok.sweep"] == 1
