"""Protocol round-trips, strict validation, and fingerprint properties."""

from __future__ import annotations

import pytest

from repro.service.protocol import (
    HTTP_STATUS,
    MAX_STREAM_JOBS,
    MAX_SWEEP_INSTANCES,
    PROTOCOL_VERSION,
    ProtocolError,
    ScheduleRequest,
    StreamRequest,
    SweepRequest,
    error_response,
    ok_response,
    parse_request,
    request_fingerprint,
)

CELL = "small-layered-ep"


def parse_error(payload, expected_kind=None) -> ProtocolError:
    with pytest.raises(ProtocolError) as excinfo:
        parse_request(payload, expected_kind=expected_kind)
    return excinfo.value


class TestRoundTrip:
    def test_schedule(self):
        req = ScheduleRequest(cell=CELL, scheduler="mqb", seed=7)
        assert parse_request(req.to_payload()) == req

    def test_sweep(self):
        req = SweepRequest(
            cell=CELL, algorithms=("kgreedy", "mqb"), n_instances=3, seed=11
        )
        assert parse_request(req.to_payload()) == req

    def test_stream(self):
        req = StreamRequest(
            cell=CELL, policy="srpt", n_jobs=5, mean_interarrival=25.0, seed=2
        )
        assert parse_request(req.to_payload()) == req

    def test_preemptive_with_deadline(self):
        req = ScheduleRequest(
            cell=CELL, scheduler="mqb", preemptive=True, quantum=0.5, deadline=9.0
        )
        assert parse_request(req.to_payload()) == req

    def test_defaults_fill_in(self):
        req = parse_request({"kind": "schedule", "cell": CELL})
        assert req == ScheduleRequest(cell=CELL)

    def test_endpoint_pins_kind(self):
        req = parse_request({"cell": CELL}, expected_kind="stream")
        assert isinstance(req, StreamRequest)


class TestRejection:
    def test_non_object_body(self):
        assert parse_error([1, 2]).code == "bad_request"

    def test_wrong_protocol_version(self):
        err = parse_error(
            {"protocol": PROTOCOL_VERSION + 1, "kind": "schedule", "cell": CELL}
        )
        assert err.code == "bad_protocol"

    def test_unknown_kind(self):
        assert parse_error({"kind": "frobnicate", "cell": CELL}).code == "unknown_kind"

    def test_kind_conflicts_with_endpoint(self):
        err = parse_error(
            {"kind": "sweep", "cell": CELL, "algorithms": ["mqb"]},
            expected_kind="schedule",
        )
        assert err.code == "bad_request"

    def test_missing_cell(self):
        err = parse_error({"kind": "schedule"})
        assert err.code == "bad_request"
        assert "cell" in err.message

    def test_unknown_cell(self):
        assert parse_error({"kind": "schedule", "cell": "nope"}).code == "unknown_cell"

    def test_unknown_scheduler(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "scheduler": "nope"})
        assert err.code == "unknown_scheduler"

    def test_unknown_policy(self):
        err = parse_error({"kind": "stream", "cell": CELL, "policy": "nope"})
        assert err.code == "unknown_policy"

    def test_unknown_fields_rejected(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "sede": 3})
        assert err.code == "bad_request"
        assert "sede" in err.message

    def test_bool_is_not_an_int(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "seed": True})
        assert err.code == "bad_request"

    def test_preemptive_must_be_bool(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "preemptive": 1})
        assert err.code == "bad_request"

    def test_empty_algorithms(self):
        err = parse_error({"kind": "sweep", "cell": CELL, "algorithms": []})
        assert err.code == "bad_request"

    def test_sweep_instance_cap(self):
        err = parse_error(
            {
                "kind": "sweep",
                "cell": CELL,
                "algorithms": ["mqb"],
                "n_instances": MAX_SWEEP_INSTANCES + 1,
            }
        )
        assert err.code == "bad_request"

    def test_stream_job_cap(self):
        err = parse_error(
            {"kind": "stream", "cell": CELL, "n_jobs": MAX_STREAM_JOBS + 1}
        )
        assert err.code == "bad_request"

    def test_negative_deadline(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "deadline": -1.0})
        assert err.code == "bad_request"

    def test_every_code_maps_to_a_status(self):
        for code, status in HTTP_STATUS.items():
            assert status in (400, 404, 405, 413, 429, 500, 503, 504), code

    def test_unregistered_code_refused(self):
        with pytest.raises(ValueError):
            ProtocolError("no_such_code", "x")
        with pytest.raises(ValueError):
            error_response("no_such_code", "x")


class TestPowerField:
    def test_round_trip(self):
        req = ScheduleRequest(cell=CELL, scheduler="kgreedy", power="shutdown")
        assert parse_request(req.to_payload()) == req

    def test_absent_means_none(self):
        req = parse_request({"kind": "schedule", "cell": CELL})
        assert req.power is None
        assert "power" not in req.to_payload()

    def test_name_normalized(self):
        req = parse_request(
            {"kind": "schedule", "cell": CELL, "power": "  Baseline "}
        )
        assert req.power == "baseline"

    def test_unknown_power(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "power": "nope"})
        assert err.code == "unknown_power"
        assert err.http_status == 400

    def test_empty_power_rejected(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "power": ""})
        assert err.code == "bad_request"

    def test_non_string_power_rejected(self):
        err = parse_error({"kind": "schedule", "cell": CELL, "power": 3})
        assert err.code == "bad_request"

    def test_sweep_does_not_accept_power(self):
        err = parse_error(
            {
                "kind": "sweep", "cell": CELL, "algorithms": ["mqb"],
                "power": "baseline",
            }
        )
        assert err.code == "bad_request"

    def test_power_splits_the_fingerprint(self):
        # Power never changes the schedule, but it changes the response
        # body (energy fields), so it is part of the response identity.
        a = ScheduleRequest(cell=CELL, seed=3)
        b = ScheduleRequest(cell=CELL, seed=3, power="baseline")
        c = ScheduleRequest(cell=CELL, seed=3, power="shutdown")
        prints = {request_fingerprint(r) for r in (a, b, c)}
        assert len(prints) == 3


class TestFingerprint:
    def test_deterministic(self):
        a = ScheduleRequest(cell=CELL, scheduler="mqb", seed=3)
        b = ScheduleRequest(cell=CELL, scheduler="mqb", seed=3)
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_execution_fields_split_it(self):
        base = ScheduleRequest(cell=CELL, scheduler="mqb", seed=3)
        for other in (
            ScheduleRequest(cell=CELL, scheduler="kgreedy", seed=3),
            ScheduleRequest(cell=CELL, scheduler="mqb", seed=4),
            ScheduleRequest(cell="medium-layered-ir", scheduler="mqb", seed=3),
            ScheduleRequest(cell=CELL, scheduler="mqb", seed=3, preemptive=True),
        ):
            assert request_fingerprint(base) != request_fingerprint(other)

    def test_deadline_never_fingerprinted(self):
        a = ScheduleRequest(cell=CELL, seed=3)
        b = ScheduleRequest(cell=CELL, seed=3, deadline=5.0)
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_quantum_ignored_when_not_preemptive(self):
        a = ScheduleRequest(cell=CELL, seed=3, quantum=1.0)
        b = ScheduleRequest(cell=CELL, seed=3, quantum=2.0)
        assert request_fingerprint(a) == request_fingerprint(b)
        ap = ScheduleRequest(cell=CELL, seed=3, preemptive=True, quantum=1.0)
        bp = ScheduleRequest(cell=CELL, seed=3, preemptive=True, quantum=2.0)
        assert request_fingerprint(ap) != request_fingerprint(bp)

    def test_kinds_never_collide(self):
        sweep = SweepRequest(cell=CELL, algorithms=("mqb",), n_instances=1, seed=0)
        stream = StreamRequest(cell=CELL, seed=0)
        sched = ScheduleRequest(cell=CELL, seed=0)
        prints = {request_fingerprint(r) for r in (sweep, stream, sched)}
        assert len(prints) == 3


class TestResponses:
    def test_ok_shape(self):
        body = ok_response("schedule", {"makespan": 3.0}, 0.01, source="cached")
        assert body["status"] == "ok"
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["source"] == "cached"
        assert body["result"] == {"makespan": 3.0}

    def test_error_shape(self):
        body = error_response("queue_full", "full", retry_after=1.5)
        assert body["status"] == "error"
        assert body["error"]["code"] == "queue_full"
        assert body["error"]["retry_after"] == 1.5

    def test_protocol_error_body(self):
        err = ProtocolError("rate_limited", "slow down", retry_after=2.0)
        assert err.http_status == 429
        assert err.to_body()["error"]["code"] == "rate_limited"
