"""Fixtures: thread-hosted daemons the tests talk to over real HTTP.

``pytest-asyncio`` is not available in this environment, so the async
daemon runs on a background thread (:class:`ServiceThread`) with its
own event loop, and the tests drive it with the synchronous client —
which also means every test exercises the real wire path.
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import Telemetry
from repro.service.server import ServiceConfig
from repro.service.testing import ServiceThread

#: Small cell shared by the service tests: fast, deterministic.
CELL = "small-layered-ep"


@pytest.fixture
def service():
    """A daemon on an ephemeral port, in-process execution (workers=0)."""
    with ServiceThread(
        ServiceConfig(port=0, workers=0, queue_limit=16), telemetry=Telemetry()
    ) as thread:
        yield thread


@pytest.fixture
def client(service):
    return service.client(timeout=60.0)
