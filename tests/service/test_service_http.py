"""End-to-end HTTP tests: bit-identity, dedup, overload, drain.

Each test talks to a real daemon (on a background thread, ephemeral
port) through the synchronous client, so the whole stack — framing,
validation, admission, executor, serialization — is under test.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.experiments.runner import run_comparison
from repro.multijob.arrival import poisson_stream
from repro.multijob.engine import simulate_stream
from repro.multijob.schedulers import make_stream_scheduler
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.service.client import ServiceError
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import ServiceConfig
from repro.service.testing import ServiceThread
from repro.sim.engine import simulate
from repro.workloads.generator import (
    sample_instance,
    sample_system,
    workload_cell,
)

from tests.service.conftest import CELL


class TestEndpoints:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["protocol"] == PROTOCOL_VERSION

    def test_metrics_shape(self, client):
        client.schedule(CELL, seed=1)
        body = client.metrics()
        assert body["queue_depth"] == 0
        assert body["in_flight"] == 0
        counters = body["telemetry"]["counters"]
        assert counters["service.requests.schedule"] == 1
        assert counters["admission.admitted"] == 1

    def test_unknown_path_404(self, client):
        response = client.request("GET", "/nope")
        assert response.status == 404
        assert response.error_code == "not_found"

    def test_wrong_method_405(self, client):
        response = client.request("GET", "/schedule")
        assert response.status == 405
        assert response.error_code == "method_not_allowed"

    def test_malformed_json_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request(
                "POST", "/schedule", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            raw = conn.getresponse()
            assert raw.status == 400
            import json

            assert json.loads(raw.read())["error"]["code"] == "bad_json"
        finally:
            conn.close()

    def test_validation_errors_are_structured(self, client):
        response = client.post("schedule", {"cell": "nope"})
        assert response.status == 400
        assert response.error_code == "unknown_cell"
        response = client.post("schedule", {"cell": CELL, "typo_field": 1})
        assert response.status == 400
        assert response.error_code == "bad_request"

    def test_wrong_protocol_version_rejected(self, client):
        response = client.request(
            "POST", "/schedule", {"protocol": 999, "cell": CELL}
        )
        assert response.status == 400
        assert response.error_code == "bad_protocol"


class TestBitIdentity:
    def test_schedule_matches_direct_simulate_for_every_scheduler(self, client):
        """The acceptance criterion: /schedule ≡ the engine, bit for bit.

        ``dispatch_simulate`` is ``simulate()`` for every centralized
        scheduler and the work-stealing engine for the decentral ones
        — the same routing the service itself uses.
        """
        from repro.decentral import dispatch_simulate

        spec = workload_cell(CELL)
        for name in available_schedulers():
            job, system = sample_instance(spec, np.random.default_rng(5))
            direct = dispatch_simulate(
                job, system, make_scheduler(name), rng=np.random.default_rng(5)
            )
            result = client.schedule(CELL, scheduler=name, seed=5)["result"]
            assert result["makespan"] == direct.makespan, name
            assert result["lower_bound"] == direct.lower_bound(), name
            assert result["ratio"] == direct.completion_time_ratio(), name
            assert result["decisions"] == direct.decisions, name

    def test_sweep_matches_run_comparison(self, client):
        spec = workload_cell(CELL)
        algorithms = ["kgreedy", "mqb"]
        direct = run_comparison(spec, algorithms, n_instances=4, seed=17)
        served = client.sweep(CELL, algorithms, n_instances=4, seed=17)
        assert served["result"]["series"] == [s.to_dict() for s in direct]

    def test_stream_matches_direct_simulate_stream(self, client):
        spec = workload_cell(CELL)
        rng = np.random.default_rng(11)
        system = sample_system(spec, rng)
        stream = poisson_stream(spec, 4, 30.0, rng)
        direct = simulate_stream(
            stream, system, make_stream_scheduler("global-mqb")
        )
        served = client.stream(
            CELL, policy="global-mqb", n_jobs=4, mean_interarrival=30.0, seed=11
        )["result"]
        assert served["makespan"] == direct.makespan
        assert served["mean_flow_time"] == direct.mean_flow_time
        assert served["completion_times"] == list(direct.completion_times)


class TestDedup:
    def test_warm_repeat_served_from_cache(self, service, client):
        first = client.schedule(CELL, seed=8)
        second = client.schedule(CELL, seed=8)
        assert first["source"] == "fresh"
        assert second["source"] == "cached"
        assert first["result"] == second["result"]
        counters = service.telemetry.snapshot().counters
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.writes"] == 1

    def test_concurrent_identical_sweeps_compute_once(self):
        """Two clients racing the same request share one computation."""
        telemetry = Telemetry()
        gate = threading.Event()
        started = threading.Event()
        calls = []

        def gated_work(payload: dict) -> dict:
            calls.append(payload["seed"])
            started.set()
            assert gate.wait(timeout=30.0)
            return {"seed": payload["seed"]}

        config = ServiceConfig(port=0, workers=0, queue_limit=16)
        with ServiceThread(
            config, telemetry=telemetry, work_fns={"schedule": gated_work}
        ) as thread:
            results = []

            def submit():
                results.append(thread.client().schedule(CELL, seed=3))

            t1 = threading.Thread(target=submit)
            t1.start()
            assert started.wait(timeout=30.0)  # first request is computing
            t2 = threading.Thread(target=submit)
            t2.start()
            # Second request must reach the executor and join before the
            # gate opens; poll the daemon's own dedup counter.
            for _ in range(500):
                if telemetry.counters.get("dedup.joined", 0) == 1:
                    break
                import time

                time.sleep(0.01)
            gate.set()
            t1.join(timeout=30.0)
            t2.join(timeout=30.0)

        assert calls == [3]  # exactly one computation
        assert len(results) == 2
        assert results[0]["result"] == results[1]["result"]
        assert {r["source"] for r in results} == {"fresh", "joined"}
        counters = telemetry.snapshot().counters
        assert counters["cache.misses"] == 1
        assert counters["dedup.joined"] == 1


class TestOverload:
    def test_queue_full_rejects_with_429(self):
        gate = threading.Event()
        started = threading.Event()

        def blocking_work(payload: dict) -> dict:
            started.set()
            assert gate.wait(timeout=30.0)
            return {}

        config = ServiceConfig(port=0, workers=0, queue_limit=1)
        with ServiceThread(config, work_fns={"schedule": blocking_work}) as thread:
            occupier = threading.Thread(
                target=lambda: thread.client().schedule(CELL, seed=1)
            )
            occupier.start()
            assert started.wait(timeout=30.0)  # the only slot is taken
            response = thread.client().post("schedule", {"cell": CELL, "seed": 2})
            assert response.status == 429
            assert response.error_code == "queue_full"
            assert response.retry_after is not None
            assert "retry-after" in response.headers
            gate.set()
            occupier.join(timeout=30.0)
            # Slot freed: the same request is admitted now.
            assert thread.client().schedule(CELL, seed=2)["source"] == "fresh"

    def test_rate_limited_rejects_with_429(self):
        config = ServiceConfig(
            port=0, workers=0, queue_limit=16, rate_limit=0.001, burst=1
        )
        with ServiceThread(config) as thread:
            client = thread.client()
            assert client.schedule(CELL, seed=1)["status"] == "ok"
            response = client.post("schedule", {"cell": CELL, "seed": 2})
            assert response.status == 429
            assert response.error_code == "rate_limited"
            assert response.retry_after is not None and response.retry_after > 0
            counters = thread.telemetry.snapshot().counters
            assert counters["admission.rejected.rate_limited"] == 1

    def test_deadline_exceeded_504(self):
        gate = threading.Event()

        def slow_work(payload: dict) -> dict:
            assert gate.wait(timeout=30.0)
            return {"done": True}

        config = ServiceConfig(port=0, workers=0)
        with ServiceThread(config, work_fns={"schedule": slow_work}) as thread:
            client = thread.client()
            response = client.post(
                "schedule", {"cell": CELL, "seed": 1, "deadline": 0.05}
            )
            assert response.status == 504
            assert response.error_code == "deadline_exceeded"
            gate.set()
            # The computation survived the waiter's deadline and was
            # cached — the retry is a cache hit, not a recompute.
            for _ in range(500):
                if thread.telemetry.counters.get("cache.writes", 0) == 1:
                    break
                import time

                time.sleep(0.01)
            retry = client.schedule(CELL, seed=1)
            assert retry["source"] == "cached"


class TestDrain:
    def test_graceful_drain_is_clean(self):
        thread = ServiceThread(ServiceConfig(port=0, workers=0)).start()
        client = thread.client()
        client.schedule(CELL, seed=1)
        assert thread.stop() is True

    def test_healthz_reports_draining(self):
        gate = threading.Event()
        started = threading.Event()

        def blocking_work(payload: dict) -> dict:
            started.set()
            assert gate.wait(timeout=30.0)
            return {}

        config = ServiceConfig(port=0, workers=0, drain_timeout=30.0)
        thread = ServiceThread(config, work_fns={"schedule": blocking_work}).start()
        client = thread.client()
        worker = threading.Thread(
            target=lambda: client.schedule(CELL, seed=1)
        )
        worker.start()
        assert started.wait(timeout=30.0)
        assert thread.service is not None
        thread.service.request_shutdown()
        # The in-flight request finishes; new connections are refused
        # once the listener closes, so the drain completes cleanly.
        gate.set()
        worker.join(timeout=30.0)
        assert thread.stop() is True

    def test_new_requests_rejected_while_draining(self):
        gate = threading.Event()
        started = threading.Event()

        def blocking_work(payload: dict) -> dict:
            started.set()
            assert gate.wait(timeout=30.0)
            return {}

        config = ServiceConfig(port=0, workers=0, drain_timeout=30.0)
        with ServiceThread(config, work_fns={"schedule": blocking_work}) as thread:
            client = thread.client()
            worker = threading.Thread(
                target=lambda: client.schedule(CELL, seed=1)
            )
            worker.start()
            assert started.wait(timeout=30.0)
            assert thread.service is not None
            # Drain directly (not request_shutdown) so the listener is
            # still up for one more request to observe the 503.
            thread.service.admission.start_draining()
            with pytest.raises(ServiceError) as excinfo:
                client.schedule(CELL, seed=2)
            assert excinfo.value.code == "draining"
            gate.set()
            worker.join(timeout=30.0)
