"""Client connection reuse and the enriched /healthz payload."""

from __future__ import annotations

import threading
import time

from repro.service.server import ServiceConfig
from repro.service.testing import ServiceThread

from tests.service.conftest import CELL


class TestKeepAlive:
    def test_connection_is_reused_across_requests(self, client):
        assert client.healthz()["status"] == "ok"
        first = client._local.conn
        assert first is not None  # pooled after the exchange
        client.schedule(CELL, seed=1)
        assert client._local.conn is first

    def test_stale_pooled_connection_is_retried_transparently(self, client):
        """The server closing an idle connection (restart, timeout) must
        cost the caller nothing: the reused-conn failure retries once on
        a fresh connection."""
        assert client.healthz()["status"] == "ok"
        conn = client._local.conn
        assert conn is not None
        conn.sock.close()  # simulate a server-side close under us
        response = client.request("GET", "/healthz")
        assert response.status == 200
        assert client._local.conn is not conn  # replaced, not resurrected

    def test_close_drops_the_pooled_connection(self, client):
        client.healthz()
        assert client._local.conn is not None
        client.close()
        assert client._local.conn is None
        assert client.healthz()["status"] == "ok"  # reconnects fine

    def test_server_counts_reused_connections_once(self, service, client):
        """Several sequential requests ride one connection: the request
        counter advances, and each exchange still gets its own answer."""
        for seed in range(3):
            client.schedule(CELL, seed=seed)
        counters = service.telemetry.counters
        assert counters["service.requests.schedule"] == 3


class TestHealthzPayload:
    def test_idle_daemon_payload(self, service, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["draining"] is False
        assert body["pending"] == 0
        assert body["in_flight"] == 0
        assert body["queue_limit"] == service.config.queue_limit
        assert body["uptime"] >= 0.0
        time.sleep(0.02)
        assert client.healthz()["uptime"] > body["uptime"]

    def test_busy_daemon_reports_queue_pressure(self):
        """A supervisor must see pending depth, not just liveness."""
        gate = threading.Event()
        started = threading.Event()

        def blocking_work(payload: dict) -> dict:
            started.set()
            assert gate.wait(timeout=30.0)
            return {}

        config = ServiceConfig(port=0, workers=0, queue_limit=4)
        with ServiceThread(config, work_fns={"schedule": blocking_work}) as thread:
            client = thread.client()
            worker = threading.Thread(
                target=lambda: client.schedule(CELL, seed=1), daemon=True
            )
            worker.start()
            assert started.wait(timeout=30.0)
            probe = thread.client()  # own connection: don't queue behind
            body = probe.healthz()
            assert body["status"] == "ok"  # busy, not down
            assert body["pending"] == 1
            assert body["queue_limit"] == 4
            gate.set()
            worker.join(timeout=30.0)

    def test_overloaded_daemon_stays_alive_and_reports_depth(self):
        """At queue_limit the daemon sheds 429s but /healthz still
        answers 200 with the full queue visible."""
        gate = threading.Event()
        started = threading.Event()

        def blocking_work(payload: dict) -> dict:
            started.set()
            assert gate.wait(timeout=30.0)
            return {}

        config = ServiceConfig(port=0, workers=0, queue_limit=2)
        with ServiceThread(config, work_fns={"schedule": blocking_work}) as thread:
            blocked = []
            for seed in (1, 2):
                client = thread.client()
                worker = threading.Thread(
                    target=lambda c=client, s=seed: c.schedule(CELL, seed=s),
                    daemon=True,
                )
                worker.start()
                blocked.append(worker)
            assert started.wait(timeout=30.0)
            probe = thread.client()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if probe.healthz()["pending"] == 2:
                    break
                time.sleep(0.01)
            body = probe.healthz()
            assert body["pending"] == 2
            overflow = probe.post("schedule", {"cell": CELL, "seed": 3})
            assert overflow.status == 429
            assert overflow.error_code == "queue_full"
            gate.set()
            for worker in blocked:
                worker.join(timeout=30.0)

    def test_draining_daemon_payload(self):
        gate = threading.Event()
        started = threading.Event()

        def blocking_work(payload: dict) -> dict:
            started.set()
            assert gate.wait(timeout=30.0)
            return {}

        config = ServiceConfig(port=0, workers=0, drain_timeout=30.0)
        with ServiceThread(config, work_fns={"schedule": blocking_work}) as thread:
            client = thread.client()
            worker = threading.Thread(
                target=lambda: client.schedule(CELL, seed=1), daemon=True
            )
            worker.start()
            assert started.wait(timeout=30.0)
            assert thread.service is not None
            # Drain directly (not request_shutdown) so the listener is
            # still up to answer the probe.
            thread.service.admission.start_draining()
            probe = thread.client()
            response = probe.request("GET", "/healthz")
            assert response.status == 503
            assert response.body["status"] == "draining"
            assert response.body["draining"] is True
            assert response.body["pending"] == 1  # admitted work drains out
            gate.set()
            worker.join(timeout=30.0)
