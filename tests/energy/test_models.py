"""Power-model validation, fingerprints and named configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.models import (
    POWER_CONFIGS,
    PowerModel,
    TypePower,
    available_power_configs,
    power_config,
)
from repro.errors import ConfigurationError


class TestTypePower:
    def test_defaults_are_valid(self):
        tp = TypePower()
        assert tp.busy == 1.0
        assert tp.idle == 0.3
        assert tp.sleep == 0.0
        assert tp.shutdown_window is None
        assert tp.wake_latency == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"busy": -1.0},
            {"idle": -0.1},
            {"sleep": -0.1},
            {"busy": float("nan")},
            {"idle": float("inf")},
            {"wake_latency": -1.0},
            {"wake_latency": float("nan")},
            {"shutdown_window": -1.0},
            {"shutdown_window": float("inf")},
        ],
        ids=[
            "neg_busy", "neg_idle", "neg_sleep", "nan_busy", "inf_idle",
            "neg_wake", "nan_wake", "neg_window", "inf_window",
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TypePower(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"busy": 0.2, "idle": 0.3},          # idle > busy
            {"idle": 0.1, "sleep": 0.2},         # sleep > idle
        ],
        ids=["idle_above_busy", "sleep_above_idle"],
    )
    def test_rejects_unordered_draws(self, kwargs):
        with pytest.raises(ConfigurationError):
            TypePower(**kwargs)

    def test_fingerprint_covers_every_field(self):
        tp = TypePower(1.0, 0.3, 0.02, 4.0, 1.0)
        assert tp.fingerprint() == {
            "busy": 1.0,
            "idle": 0.3,
            "sleep": 0.02,
            "shutdown_window": 4.0,
            "wake_latency": 1.0,
        }

    def test_none_window_survives_fingerprint(self):
        assert TypePower().fingerprint()["shutdown_window"] is None


class TestPowerModel:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PowerModel(types=())

    def test_uniform_shares_one_type_power(self):
        model = PowerModel.uniform(3, idle=0.4)
        assert model.num_types == 3
        assert all(t.idle == 0.4 for t in model.types)

    def test_check_types_mismatch(self):
        model = PowerModel.uniform(2)
        assert model.check_types(2) is model
        with pytest.raises(ConfigurationError):
            model.check_types(3)

    def test_arrays_match_declarations(self):
        model = PowerModel(
            types=(TypePower(1.0, 0.5), TypePower(2.0, 0.1, 0.05, 3.0, 0.5))
        )
        np.testing.assert_array_equal(model.busy_array(), [1.0, 2.0])
        np.testing.assert_array_equal(model.idle_array(), [0.5, 0.1])
        np.testing.assert_array_equal(model.sleep_array(), [0.0, 0.05])
        np.testing.assert_array_equal(model.window_array(), [np.inf, 3.0])
        np.testing.assert_array_equal(model.wake_array(), [0.0, 0.5])

    def test_name_excluded_from_fingerprint(self):
        # Identical physics must share cache entries regardless of the
        # presentation name.
        a = PowerModel.uniform(2, name="a")
        b = PowerModel.uniform(2, name="b")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_is_per_type(self):
        a = PowerModel(types=(TypePower(idle=0.1), TypePower(idle=0.5)))
        b = PowerModel(types=(TypePower(idle=0.5), TypePower(idle=0.1)))
        assert a.fingerprint() != b.fingerprint()


class TestNamedConfigs:
    def test_available_names(self):
        assert available_power_configs() == sorted(POWER_CONFIGS)
        assert {"baseline", "idle-heavy", "hetero", "shutdown"} <= set(
            available_power_configs()
        )

    @pytest.mark.parametrize("name", sorted(POWER_CONFIGS))
    @pytest.mark.parametrize("k", [1, 2, 6, 9])
    def test_every_config_resolves_for_any_k(self, name, k):
        model = power_config(name, k)
        assert model.num_types == k
        assert model.name == name

    def test_hetero_idle_draws_differ_across_types(self):
        model = power_config("hetero", 3)
        idles = {t.idle for t in model.types}
        assert len(idles) == 3

    def test_shutdown_config_has_window(self):
        model = power_config("shutdown", 2)
        assert all(t.shutdown_window is not None for t in model.types)
        assert all(t.wake_latency > 0 for t in model.types)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            power_config("nuclear", 2)

    def test_bad_k_rejected(self):
        with pytest.raises(ConfigurationError):
            power_config("baseline", 0)
