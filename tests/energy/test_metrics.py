"""Energy metrics: hand-computed cases, invariants, and property tests.

The hand-computed fixture is small enough to integrate by eye::

    type 0 (P=2, busy 1.0, idle 0.5): proc 0 runs task 0 on [0,3) and
        task 1 on [5,8); proc 1 never runs anything.
    type 1 (P=1, busy 2.0, idle 0.25): proc 0 runs task 2 on [1,9).

Makespan 9; busy time (6, 8); idle gaps 2, 1 and a whole-horizon 9 on
type 0, a leading 1 on type 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.metrics import (
    active_interval_time,
    energy_breakdown,
    energy_delay_product,
    idle_gaps,
    schedule_profit,
    task_completion_times,
    total_energy,
)
from repro.energy.models import PowerModel, TypePower, power_config
from repro.errors import ValidationError
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

RES = ResourceConfig(counts=(2, 1))
POWER = PowerModel(
    types=(TypePower(busy=1.0, idle=0.5), TypePower(busy=2.0, idle=0.25))
)
SHUTDOWN_POWER = PowerModel(
    types=(
        TypePower(busy=1.0, idle=0.5, sleep=0.1, shutdown_window=3.0,
                  wake_latency=1.0),
        TypePower(busy=2.0, idle=0.25),
    )
)


def hand_trace() -> ScheduleTrace:
    trace = ScheduleTrace()
    trace.add(0, 0, 0, 0.0, 3.0)
    trace.add(1, 0, 0, 5.0, 8.0)
    trace.add(2, 1, 0, 1.0, 9.0)
    return trace


class TestIdleGaps:
    def test_hand_computed_gaps(self):
        lengths, types = idle_gaps(hand_trace(), RES)
        got = sorted(zip(types.tolist(), lengths.tolist()))
        assert got == [(0, 1.0), (0, 2.0), (0, 9.0), (1, 1.0)]

    def test_gap_invariant(self):
        # Per type: gap lengths sum to P * makespan - busy time.
        lengths, types = idle_gaps(hand_trace(), RES)
        sums = np.zeros(2)
        np.add.at(sums, types, lengths)
        np.testing.assert_allclose(sums, [2 * 9 - 6, 1 * 9 - 8])

    def test_empty_trace_is_all_horizon_gaps(self):
        lengths, types = idle_gaps(ScheduleTrace(), RES, makespan=5.0)
        assert lengths.tolist() == [5.0, 5.0, 5.0]
        assert types.tolist() == [0, 0, 1]

    def test_empty_trace_zero_horizon_has_no_gaps(self):
        lengths, types = idle_gaps(ScheduleTrace(), RES)
        assert len(lengths) == 0 and len(types) == 0

    def test_rejects_type_out_of_range(self):
        trace = ScheduleTrace()
        trace.add(0, 2, 0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            idle_gaps(trace, RES)

    def test_rejects_proc_out_of_range(self):
        trace = ScheduleTrace()
        trace.add(0, 1, 1, 0.0, 1.0)
        with pytest.raises(ValidationError):
            idle_gaps(trace, RES)

    def test_rejects_segment_beyond_makespan(self):
        with pytest.raises(ValidationError):
            idle_gaps(hand_trace(), RES, makespan=5.0)

    def test_rejects_negative_makespan(self):
        with pytest.raises(ValidationError):
            idle_gaps(ScheduleTrace(), RES, makespan=-1.0)


class TestEnergyBreakdown:
    def test_hand_computed_no_shutdown(self):
        bd = energy_breakdown(hand_trace(), RES, POWER)
        # busy: 1.0 * 6 + 2.0 * 8; idle: 0.5 * (2+1+9) + 0.25 * 1.
        assert bd["busy"] == pytest.approx(22.0)
        assert bd["idle"] == pytest.approx(6.25)
        assert bd["sleep"] == 0.0 and bd["wake"] == 0.0
        assert bd["total"] == pytest.approx(28.25)
        np.testing.assert_allclose(bd["busy_time"], [6.0, 8.0])
        np.testing.assert_allclose(bd["busy_energy"], [6.0, 16.0])
        assert bd["makespan"] == 9.0
        assert bd["n_gaps"] == 4 and bd["n_shutdowns"] == 0

    def test_hand_computed_shutdown(self):
        # Only the whole-horizon gap of 9 reaches window + wake = 4:
        # 3 units idle (0.5), 5 units sleep (0.1), 1 unit wake (busy 1.0).
        bd = energy_breakdown(hand_trace(), RES, SHUTDOWN_POWER)
        assert bd["idle"] == pytest.approx(0.5 * (2 + 1 + 3) + 0.25 * 1)
        assert bd["sleep"] == pytest.approx(0.1 * 5)
        assert bd["wake"] == pytest.approx(1.0 * 1)
        assert bd["total"] == pytest.approx(22.0 + 3.25 + 0.5 + 1.0)
        assert bd["n_shutdowns"] == 1

    def test_gap_exactly_at_threshold_sleeps(self):
        power = PowerModel(
            types=(TypePower(1.0, 0.5, 0.0, shutdown_window=1.0,
                             wake_latency=1.0),)
        )
        trace = ScheduleTrace()
        trace.add(0, 0, 0, 0.0, 1.0)
        trace.add(1, 0, 0, 3.0, 4.0)  # gap of exactly window + wake
        bd = energy_breakdown(trace, ResourceConfig(counts=(1,)), power)
        assert bd["n_shutdowns"] == 1
        assert bd["sleep"] == 0.0  # nothing left between window and wake

    def test_total_energy_and_edp(self):
        total = total_energy(hand_trace(), RES, POWER)
        assert total == pytest.approx(28.25)
        assert energy_delay_product(hand_trace(), RES, POWER) == pytest.approx(
            28.25 * 9.0
        )

    def test_rejects_k_mismatch(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            energy_breakdown(hand_trace(), RES, PowerModel.uniform(3))


class TestActiveIntervalTime:
    def test_hand_computed_spans(self):
        # type 0 proc 0 spans [0, 8); proc 1 unused; type 1 spans [1, 9).
        np.testing.assert_allclose(
            active_interval_time(hand_trace(), RES), [8.0, 8.0]
        )

    def test_empty_trace_is_zero(self):
        np.testing.assert_array_equal(
            active_interval_time(ScheduleTrace(), RES), [0.0, 0.0]
        )


class TestProfit:
    def test_completion_times(self):
        out = task_completion_times(hand_trace(), 4)
        assert out[:3].tolist() == [3.0, 8.0, 9.0]
        assert np.isinf(out[3])  # never ran

    def test_rejects_unknown_task(self):
        with pytest.raises(ValidationError):
            task_completion_times(hand_trace(), 2)

    def test_hand_computed_profit(self):
        values = np.array([10.0, 20.0, 30.0, 40.0])
        deadlines = np.array([5.0, 8.0, 8.0, 100.0])
        # Tasks 0 and 1 meet their deadlines; 2 is late, 3 never ran.
        profit = schedule_profit(
            hand_trace(), values, deadlines, energy=26.75, energy_price=0.1
        )
        assert profit == pytest.approx(30.0 - 2.675)

    def test_scalar_deadline_broadcasts(self):
        values = np.array([10.0, 20.0, 30.0])
        profit = schedule_profit(hand_trace(), values, 9.0, energy=0.0)
        assert profit == pytest.approx(60.0)

    def test_rejects_negative_price(self):
        with pytest.raises(ValidationError):
            schedule_profit(hand_trace(), np.ones(3), 9.0, 1.0, -0.1)


@pytest.mark.parametrize("cell", ["small-layered-ep", "small-random-ep"])
@pytest.mark.parametrize("name", ["kgreedy", "mqb", "kgreedy-consolidate[r=0.5]"])
class TestProperties:
    def test_energy_floor_and_gap_invariant(self, cell, name):
        job, system = sample_instance(
            WORKLOAD_CELLS[cell], np.random.default_rng(3)
        )
        res = simulate(
            job, system, make_scheduler(name),
            rng=np.random.default_rng(3), record_trace=True,
        )
        for power_name in ("baseline", "hetero", "shutdown"):
            power = power_config(power_name, system.num_types)
            bd = energy_breakdown(res.trace, system, power, res.makespan)
            # Energy is bounded below by the busy-only floor (draws are
            # ordered busy >= idle >= sleep >= 0).
            assert bd["total"] >= bd["busy"] - 1e-9
            assert bd["idle"] >= 0 and bd["sleep"] >= 0 and bd["wake"] >= 0
            # Idle-gap decomposition tiles the horizon exactly.
            lengths, types = idle_gaps(res.trace, system, res.makespan)
            sums = np.zeros(system.num_types)
            np.add.at(sums, types, lengths)
            expected = system.as_array() * res.makespan - bd["busy_time"]
            np.testing.assert_allclose(sums, expected, atol=1e-6)
