"""Energy scheduler variants: identity anchors, behaviour, parsing.

The load-bearing contract is *bit-identity when the energy knob is
off*: ``emqb[w=0]`` (and any uniform power model) runs MQB's exact
arithmetic, ``kgreedy-consolidate[r=1]`` never binds its cap — traces,
decision counts and makespans all match, with telemetry on or off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.models import PowerModel
from repro.energy.schedulers import (
    EMQB,
    KGreedyConsolidate,
    is_energy_scheduler,
    make_energy_scheduler,
)
from repro.errors import ConfigurationError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.engine import simulate
from repro.sim.preemptive import simulate_preemptive
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

CELLS = ("small-layered-ep", "small-random-ep")


def _instance(cell: str, seed: int):
    return sample_instance(WORKLOAD_CELLS[cell], np.random.default_rng(seed))


def _run(job, system, name: str, telemetry=None, seed: int = 1):
    return simulate(
        job, system, make_scheduler(name),
        rng=np.random.default_rng(seed), record_trace=True,
        telemetry=telemetry,
    )


def assert_identical(a, b):
    assert a.makespan == b.makespan
    assert a.decisions == b.decisions
    assert a.trace.segments == b.trace.segments


@pytest.mark.parametrize("cell", CELLS)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestIdentityAnchors:
    def test_emqb_w0_is_mqb(self, cell, seed):
        job, system = _instance(cell, seed)
        assert_identical(
            _run(job, system, "mqb"), _run(job, system, "emqb[w=0]")
        )

    def test_emqb_uniform_power_is_mqb(self, cell, seed):
        # Uniform idle draws collapse the weights to exactly 1.0 even
        # at w > 0 (the short-circuit, not float cancellation).
        job, system = _instance(cell, seed)
        assert_identical(
            _run(job, system, "mqb"),
            _run(job, system, "emqb[w=0.7,power=baseline]"),
        )

    def test_consolidate_r1_is_kgreedy(self, cell, seed):
        job, system = _instance(cell, seed)
        assert_identical(
            _run(job, system, "kgreedy"),
            _run(job, system, "kgreedy-consolidate[r=1]"),
        )

    def test_identity_survives_telemetry(self, cell, seed):
        job, system = _instance(cell, seed)
        base = _run(job, system, "mqb")
        for telemetry in (None, NULL_TELEMETRY, Telemetry()):
            assert_identical(
                base, _run(job, system, "emqb[w=0]", telemetry=telemetry)
            )
        base = _run(job, system, "kgreedy")
        for telemetry in (None, NULL_TELEMETRY, Telemetry()):
            assert_identical(
                base,
                _run(
                    job, system, "kgreedy-consolidate[r=1]",
                    telemetry=telemetry,
                ),
            )


class TestBehaviour:
    def test_emqb_differs_under_hetero_power(self):
        # On at least one medium instance the idle-power weighting must
        # change the schedule — otherwise the knob is dead code.
        diffs = 0
        for seed in range(5):
            job, system = _instance("medium-layered-ir", seed)
            a = _run(job, system, "mqb")
            b = _run(job, system, "emqb[w=1]")
            diffs += a.trace.segments != b.trace.segments
        assert diffs > 0

    def test_consolidate_caps_concurrency(self):
        for seed in range(5):
            job, system = _instance("small-layered-ep", seed)
            res = _run(job, system, "kgreedy-consolidate[r=0.25]")
            cap = np.maximum(1, np.ceil(0.25 * system.as_array()))
            cols = res.trace.as_columns()
            # Count concurrent segments per type at every segment start.
            for alpha in range(system.num_types):
                sel = cols["alpha"] == alpha
                starts, ends = cols["start"][sel], cols["end"][sel]
                for t in starts:
                    running = np.sum((starts <= t) & (ends > t))
                    assert running <= cap[alpha]

    def test_consolidate_preemptive_reannouncement(self):
        # The preemptive engine returns running tasks via task_ready at
        # quantum boundaries; the running counts must not leak.
        job, system = _instance("small-layered-ep", 0)
        res = simulate_preemptive(
            job, system, make_scheduler("kgreedy-consolidate[r=0.5]"),
            rng=np.random.default_rng(1), quantum=1.0,
        )
        assert res.makespan > 0
        base = simulate_preemptive(
            job, system, make_scheduler("kgreedy"),
            rng=np.random.default_rng(1), quantum=1.0,
        )
        full = simulate_preemptive(
            job, system, make_scheduler("kgreedy-consolidate[r=1]"),
            rng=np.random.default_rng(1), quantum=1.0,
        )
        assert (full.makespan, full.decisions) == (base.makespan, base.decisions)

    def test_batch_engine_excludes_energy_variants(self):
        from repro.sim.batch import batch_supported

        job, system = _instance("small-layered-ep", 0)
        assert not batch_supported(make_scheduler("emqb[w=0.5]"), job)
        assert not batch_supported(
            make_scheduler("kgreedy-consolidate[r=0.5]"), job
        )
        assert batch_supported(make_scheduler("mqb"), job)

    def test_batch_falls_back_not_lockstep(self):
        # The lockstep engine would silently run EMQB as MQB; it must
        # fall back to the scalar engine and count the fallback.
        from repro.sim.batch import simulate_batch

        instances = [_instance("small-layered-ep", seed) for seed in range(3)]
        telemetry = Telemetry()
        batched = simulate_batch(
            instances, "emqb[w=1]",
            rngs=[np.random.default_rng(seed) for seed in range(3)],
            telemetry=telemetry,
        )
        for seed, ((job, system), res) in enumerate(zip(instances, batched)):
            scalar = simulate(
                job, system, make_scheduler("emqb[w=1]"),
                rng=np.random.default_rng(seed),
            )
            assert (res.makespan, res.decisions) == (
                scalar.makespan, scalar.decisions
            )
        assert telemetry.counters.get("batch.fallback", 0) == len(instances)


class TestConstructionAndParsing:
    def test_registry_lists_energy_names(self):
        names = available_schedulers()
        assert "emqb" in names
        assert "emqb[w=0.5]" in names
        assert "kgreedy-consolidate" in names
        assert "kgreedy-consolidate[r=0.5]" in names

    def test_names_round_trip(self):
        assert make_scheduler("emqb[w=0.5]").name == "emqb[w=0.5]"
        assert (
            make_scheduler("emqb[w=0.5,power=baseline]").name
            == "emqb[w=0.5,power=baseline]"
        )
        assert make_scheduler("emqb").name == "emqb[w=0.5]"
        assert (
            make_scheduler("kgreedy-consolidate[r=0.25]").name
            == "kgreedy-consolidate[r=0.25]"
        )

    def test_default_power_elided_from_name(self):
        assert make_scheduler("emqb[w=1,power=hetero]").name == "emqb[w=1]"

    def test_is_energy_scheduler(self):
        assert is_energy_scheduler(EMQB())
        assert is_energy_scheduler(KGreedyConsolidate())
        assert not is_energy_scheduler(make_scheduler("mqb"))
        assert not is_energy_scheduler(make_scheduler("kgreedy"))

    def test_power_model_instance_accepted(self):
        model = PowerModel.uniform(2, idle=0.4, name="bespoke")
        sched = EMQB(w=0.5, power=model)
        assert "power=bespoke" in sched.name

    @pytest.mark.parametrize(
        "name",
        [
            "emqb[w=2]",
            "emqb[w=-0.1]",
            "emqb[w=nan]",
            "emqb[w=0.5",
            "emqb[volts=3]",
            "emqb[w=abc]",
            "kgreedy-consolidate[r=0]",
            "kgreedy-consolidate[r=1.5]",
            "kgreedy-consolidate[w=0.5]",
            "ekgreedy",
        ],
    )
    def test_bad_names_rejected(self, name):
        with pytest.raises(ConfigurationError):
            make_energy_scheduler(name)
