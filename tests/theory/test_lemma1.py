"""Unit tests for Lemma 1 (ball drawing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.theory.lemma1 import (
    expected_draws_closed_form,
    expected_draws_exact,
    simulate_draws,
)


class TestClosedForm:
    def test_all_red(self):
        # r == n: must draw everything; E = n/(n+1)*(n+1) = n.
        assert expected_draws_closed_form(5, 5) == 5.0

    def test_single_red(self):
        # r=1: E = (n+1)/2 — the average position of one marked ball.
        assert expected_draws_closed_form(9, 1) == 5.0

    def test_paper_form(self):
        assert expected_draws_closed_form(10, 2) == pytest.approx(2 / 3 * 11)

    @pytest.mark.parametrize("n,r", [(0, 1), (5, 0), (3, 4)])
    def test_invalid_args(self, n, r):
        with pytest.raises(ConfigurationError):
            expected_draws_closed_form(n, r)


class TestExactMatchesClosedForm:
    @pytest.mark.parametrize(
        "n,r", [(1, 1), (5, 2), (10, 3), (30, 7), (50, 50), (100, 1)]
    )
    def test_agreement(self, n, r):
        assert expected_draws_exact(n, r) == pytest.approx(
            expected_draws_closed_form(n, r), rel=1e-12
        )


class TestMonteCarlo:
    def test_matches_closed_form(self, rng):
        n, r = 40, 6
        draws = simulate_draws(n, r, 20000, rng)
        assert draws.mean() == pytest.approx(
            expected_draws_closed_form(n, r), rel=0.02
        )

    def test_draw_support(self, rng):
        draws = simulate_draws(10, 3, 500, rng)
        assert draws.min() >= 3
        assert draws.max() <= 10

    def test_invalid_trials(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_draws(5, 2, 0, rng)

    def test_deterministic_when_all_red(self, rng):
        draws = simulate_draws(4, 4, 50, rng)
        assert np.all(draws == 4)
