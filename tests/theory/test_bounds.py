"""Unit tests for the competitive-ratio bound formulas."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.theory.bounds import (
    deterministic_online_lower_bound,
    graham_bound,
    kgreedy_competitive_ratio,
    randomized_online_lower_bound,
    randomized_online_lower_bound_as_stated,
    randomized_online_lower_bound_finite_m,
)


class TestRandomizedBound:
    def test_formula(self):
        # K=2, P=(2,2): 3 - 1/3 - 1/3 - 1/3 = 2.
        assert randomized_online_lower_bound((2, 2)) == pytest.approx(2.0)

    def test_stated_form_differs_by_pmax_term(self):
        p = (2, 3, 4)
        derived = randomized_online_lower_bound(p)
        stated = randomized_online_lower_bound_as_stated(p)
        assert derived - stated == pytest.approx(1 / 4 - 1 / 5)

    def test_grows_linearly_in_k(self):
        vals = [
            randomized_online_lower_bound((3,) * k) for k in range(1, 7)
        ]
        diffs = [b - a for a, b in zip(vals, vals[1:])]
        assert all(d == pytest.approx(1 - 1 / 4) for d in diffs)

    def test_large_p_approaches_k_plus_one(self):
        k = 4
        val = randomized_online_lower_bound((10_000,) * k)
        assert val == pytest.approx(k + 1, abs=1e-3)

    def test_invalid_processors(self):
        with pytest.raises(ResourceError):
            randomized_online_lower_bound(())
        with pytest.raises(ResourceError):
            randomized_online_lower_bound((0, 2))


class TestFiniteMBound:
    def test_converges_to_asymptotic(self):
        p = (2, 2, 2)
        limit = randomized_online_lower_bound(p)
        vals = [randomized_online_lower_bound_finite_m(p, m) for m in (1, 10, 100, 10000)]
        assert vals == sorted(vals)  # monotone increasing in m
        assert vals[-1] == pytest.approx(limit, abs=1e-2)

    def test_below_asymptotic(self):
        p = (3, 3)
        assert randomized_online_lower_bound_finite_m(p, 5) < (
            randomized_online_lower_bound(p)
        )

    def test_requires_last_type_maximal(self):
        with pytest.raises(ResourceError):
            randomized_online_lower_bound_finite_m((5, 2), 3)

    def test_bad_m(self):
        with pytest.raises(ResourceError):
            randomized_online_lower_bound_finite_m((2, 2), 0)


class TestOtherBounds:
    def test_deterministic(self):
        assert deterministic_online_lower_bound((2, 4)) == pytest.approx(3 - 0.25)

    def test_kgreedy_guarantee(self):
        assert kgreedy_competitive_ratio(4) == 5.0
        with pytest.raises(ResourceError):
            kgreedy_competitive_ratio(0)

    def test_graham(self):
        assert graham_bound(1) == 1.0
        assert graham_bound(4) == 1.75
        with pytest.raises(ResourceError):
            graham_bound(0)

    def test_randomized_at_k1_is_below_graham_style(self):
        # K=1, P=(p,): bound = 2 - 2/(p+1) <= 2 - 1/p for p >= 1.
        for p in (1, 2, 8):
            assert randomized_online_lower_bound((p,)) <= graham_bound(p) + 1e-12
