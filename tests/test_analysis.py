"""Unit tests for the statistical analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_ci,
    mean_ci,
    paired_difference,
    required_instances,
)
from repro.errors import ConfigurationError


class TestMeanCI:
    def test_contains_true_mean_usually(self, rng):
        hits = 0
        for _ in range(200):
            x = rng.normal(3.0, 1.0, size=50)
            if mean_ci(x, 0.95).contains(3.0):
                hits += 1
        assert hits > 175  # ~95 % coverage with slack

    def test_width_shrinks_with_n(self, rng):
        small = mean_ci(rng.normal(0, 1, 20))
        large = mean_ci(rng.normal(0, 1, 2000))
        assert large.half_width < small.half_width

    def test_estimate_is_sample_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.estimate == pytest.approx(2.0)

    def test_requires_two_samples(self):
        with pytest.raises(ConfigurationError):
            mean_ci([1.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ConfigurationError):
            mean_ci([1.0, float("nan")])

    def test_unknown_level(self):
        with pytest.raises(ConfigurationError, match="confidence level"):
            mean_ci([1.0, 2.0], level=0.5)


class TestBootstrapCI:
    def test_mean_bootstrap_matches_normal_ci(self, rng):
        x = rng.normal(5.0, 2.0, size=400)
        boot = bootstrap_ci(x, rng)
        norm = mean_ci(x)
        assert boot.low == pytest.approx(norm.low, abs=0.25)
        assert boot.high == pytest.approx(norm.high, abs=0.25)

    def test_other_statistic(self, rng):
        x = rng.exponential(1.0, size=300)
        ci = bootstrap_ci(x, rng, statistic=np.median)
        assert ci.low <= ci.estimate <= ci.high

    def test_resample_floor(self, rng):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], rng, n_resamples=3)


class TestPairedDifference:
    def test_detects_consistent_improvement(self, rng):
        b = rng.uniform(2.0, 3.0, size=60)
        a = b - rng.uniform(0.2, 0.4, size=60)  # A always better
        cmp = paired_difference(a, b)
        assert cmp.significant
        assert cmp.a_better
        assert cmp.mean_difference < 0

    def test_no_false_positive_on_identical(self, rng):
        x = rng.uniform(1, 2, size=50)
        noise = rng.normal(0, 1e-3, size=50)
        cmp = paired_difference(x, x + noise)
        assert abs(cmp.mean_difference) < 0.01

    def test_pairing_beats_unpaired_variance(self, rng):
        """The paired CI is far tighter than the per-sample spread."""
        base = rng.uniform(1.0, 4.0, size=80)  # instance difficulty
        a = base + rng.normal(0.0, 0.01, 80)
        b = base + 0.05 + rng.normal(0.0, 0.01, 80)
        cmp = paired_difference(a, b)
        assert cmp.significant  # 0.05 shift found despite 3x spread
        assert cmp.ci.half_width < 0.01

    def test_alignment_checked(self):
        with pytest.raises(ConfigurationError, match="align"):
            paired_difference([1.0, 2.0], [1.0, 2.0, 3.0])


class TestRequiredInstances:
    def test_scales_inverse_square(self, rng):
        x = rng.normal(0, 1, size=100)
        n1 = required_instances(x, 0.1)
        n2 = required_instances(x, 0.05)
        assert n2 == pytest.approx(4 * n1, rel=0.1)

    def test_floor_of_two(self, rng):
        x = rng.normal(0, 1e-9, size=10)
        assert required_instances(x, 1.0) == 2

    def test_positive_target(self, rng):
        with pytest.raises(ConfigurationError):
            required_instances([1.0, 2.0], 0.0)
