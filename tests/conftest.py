"""Shared fixtures: reference jobs and systems used across the suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Keep the suite hermetic: never read or write the user's persistent
# sweep result cache (~/.cache/repro).  Cache tests opt back in with
# monkeypatch.setenv("REPRO_CACHE", "1") plus a tmp_path REPRO_CACHE_DIR.
os.environ.setdefault("REPRO_CACHE", "0")

from repro import KDag, KDagBuilder, ResourceConfig  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def diamond_job() -> KDag:
    """A 2-type diamond: 0 -> {1, 2} -> 3 (types 0,1,1,0; work 1,2,3,1)."""
    return KDag(
        types=[0, 1, 1, 0],
        work=[1.0, 2.0, 3.0, 1.0],
        edges=[(0, 1), (0, 2), (1, 3), (2, 3)],
        num_types=2,
    )


@pytest.fixture
def chain_job() -> KDag:
    """A 3-type serial chain 0 -> 1 -> 2 with unit work."""
    return KDag(
        types=[0, 1, 2],
        work=[1.0, 1.0, 1.0],
        edges=[(0, 1), (1, 2)],
        num_types=3,
    )


@pytest.fixture
def fig1_job() -> KDag:
    """A job with the quoted properties of the paper's Fig. 1 example.

    3 task types, unit work, T1(J, a1) = 7, T1(J, a2) = 4,
    T1(J, a3) = 3, span T_inf(J) = 7.  (The paper shows the figure
    only as an image; this reconstruction matches every stated
    quantity.)
    """
    b = KDagBuilder(num_types=3)
    # A chain of 7 circle (type-0) tasks realizes both T1(., 0) = 7 and
    # the span of 7.
    chain = [b.add_task(0, 1.0, label=f"c{i}") for i in range(7)]
    b.chain(chain)
    # 4 squares (type 1) hang off the first four chain tasks.
    squares = [b.add_task(1, 1.0, label=f"s{i}") for i in range(4)]
    for i, s in enumerate(squares):
        b.add_edge(chain[i], s)
    # 3 triangles (type 2) consume the squares' outputs.
    triangles = [b.add_task(2, 1.0, label=f"t{i}") for i in range(3)]
    for i, t in enumerate(triangles):
        b.add_edge(squares[i], t)
    return b.build()


@pytest.fixture
def two_type_system() -> ResourceConfig:
    return ResourceConfig((2, 2))


@pytest.fixture
def three_type_system() -> ResourceConfig:
    return ResourceConfig((2, 3, 1))


def make_random_job(
    rng: np.random.Generator,
    n: int = 40,
    k: int = 3,
    edge_prob: float = 0.12,
    max_work: int = 6,
) -> KDag:
    """A random layered-ish DAG helper used by several test modules."""
    types = rng.integers(0, k, size=n)
    work = rng.integers(1, max_work + 1, size=n).astype(float)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_prob
    ]
    return KDag(types=types, work=work, edges=edges, num_types=k)
