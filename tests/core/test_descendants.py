"""Unit tests for descendant values, spans, distances, due dates."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag
from repro.core.descendants import (
    descendant_values,
    different_child_distance,
    due_dates,
    one_step_descendant_values,
    remaining_span,
    untyped_descendant_values,
)
from repro.core.properties import span


class TestTypedDescendantValues:
    def test_sink_has_zero(self, diamond_job):
        d = descendant_values(diamond_job)
        assert np.all(d[3] == 0.0)

    def test_chain_accumulates_downstream(self, chain_job):
        d = descendant_values(chain_job)
        # task0's descendants: task1 (type1, w1) and task2 (type2, w1).
        assert list(d[0]) == [0.0, 1.0, 1.0]
        assert list(d[1]) == [0.0, 0.0, 1.0]
        assert list(d[2]) == [0.0, 0.0, 0.0]

    def test_parent_sharing_splits_by_in_degree(self, diamond_job):
        d = descendant_values(diamond_job)
        # Task 3 (type 0, work 1) has 2 parents: each gets 1/2.
        assert d[1, 0] == pytest.approx(0.5)
        assert d[2, 0] == pytest.approx(0.5)
        # Task 0: children 1 (type1 w2, pr=1) and 2 (type1 w3, pr=1),
        # each contributing their own value+work fully.
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 0] == pytest.approx(1.0)  # the two 1/2 shares of task 3

    def test_sum_over_types_matches_untyped(self, rng):
        from tests.conftest import make_random_job

        for _ in range(10):
            job = make_random_job(rng, n=40, k=4)
            typed = descendant_values(job)
            untyped = untyped_descendant_values(job)
            np.testing.assert_allclose(typed.sum(axis=1), untyped, rtol=1e-12)

    def test_shape(self, fig1_job):
        assert descendant_values(fig1_job).shape == (14, 3)


class TestOneStepDescendantValues:
    def test_counts_children_only(self, chain_job):
        d1 = one_step_descendant_values(chain_job)
        assert list(d1[0]) == [0.0, 1.0, 0.0]  # sees task1, not task2
        assert list(d1[1]) == [0.0, 0.0, 1.0]

    def test_equals_full_on_depth_one_dags(self):
        # Star: one root, three leaves -> full and 1-step agree.
        job = KDag(
            types=[0, 1, 1, 2],
            work=[1, 2, 3, 4],
            edges=[(0, 1), (0, 2), (0, 3)],
            num_types=3,
        )
        np.testing.assert_allclose(
            one_step_descendant_values(job), descendant_values(job)
        )

    def test_never_exceeds_full(self, rng):
        from tests.conftest import make_random_job

        for _ in range(10):
            job = make_random_job(rng, n=30, k=3)
            assert np.all(
                one_step_descendant_values(job) <= descendant_values(job) + 1e-12
            )


class TestRemainingSpan:
    def test_chain(self, chain_job):
        assert list(remaining_span(chain_job)) == [3.0, 2.0, 1.0]

    def test_source_equals_span_somewhere(self, fig1_job):
        rs = remaining_span(fig1_job)
        assert rs.max() == pytest.approx(span(fig1_job))

    def test_childless_task_is_own_work(self, diamond_job):
        assert remaining_span(diamond_job)[3] == 1.0

    def test_monotone_along_edges(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=40)
        rs = remaining_span(job)
        for u, v in job.edges:
            assert rs[u] >= rs[v] + job.work[u] - 1e-12


class TestDifferentChildDistance:
    def test_chain_distances(self, chain_job):
        # 0 (t0) -> 1 (t1): distance 1; 1 -> 2 (t2): distance 1; sink inf.
        d = different_child_distance(chain_job)
        assert d[0] == 1.0
        assert d[1] == 1.0
        assert np.isinf(d[2])

    def test_same_type_chain_is_infinite(self):
        job = KDag(types=[0, 0, 0], work=[1, 1, 1], edges=[(0, 1), (1, 2)])
        assert np.all(np.isinf(different_child_distance(job)))

    def test_skips_same_type_hops(self):
        # 0(t0) -> 1(t0) -> 2(t1): dist(0) = 2 via same-type child.
        job = KDag(types=[0, 0, 1], work=[1, 1, 1], edges=[(0, 1), (1, 2)])
        d = different_child_distance(job)
        assert d[0] == 2.0
        assert d[1] == 1.0

    def test_takes_minimum_branch(self):
        # 0(t0) -> 1(t1) and 0 -> 2(t0) -> 3(t1): min is 1.
        job = KDag(
            types=[0, 1, 0, 1],
            work=[1, 1, 1, 1],
            edges=[(0, 1), (0, 2), (2, 3)],
            num_types=2,
        )
        assert different_child_distance(job)[0] == 1.0


class TestDueDates:
    def test_critical_source_has_zero_due_date(self, chain_job):
        dd = due_dates(chain_job)
        assert dd[0] == 0.0
        assert dd[1] == 1.0
        assert dd[2] == 2.0

    def test_due_dates_nonnegative(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=40)
        assert np.all(due_dates(job) >= -1e-12)

    def test_diamond(self, diamond_job):
        dd = due_dates(diamond_job)
        # span 5; remaining spans: 0->5, 1->3, 2->4, 3->1.
        assert list(dd) == [0.0, 2.0, 1.0, 4.0]


# ----------------------------------------------------------------------
# Level-batched sweeps vs naive per-node recursions
# ----------------------------------------------------------------------
def _naive_descendant_values(job):
    n, k = job.n_tasks, job.num_types
    d = np.zeros((n, k))
    in_deg = job.in_degrees()
    for v in reversed(job.topological_order):
        for u in job.children(v):
            share = (d[u] + np.bincount(
                [job.types[u]], weights=[job.work[u]], minlength=k
            )) / in_deg[u]
            d[v] += share
    return d


def _naive_remaining_span(job):
    n = job.n_tasks
    rs = np.zeros(n)
    for v in reversed(job.topological_order):
        kids = job.children(v)
        rs[v] = job.work[v] + (max(rs[u] for u in kids) if len(kids) else 0.0)
    return rs


def _naive_different_child_distance(job):
    n = job.n_tasks
    dist = np.full(n, np.inf)
    for v in reversed(job.topological_order):
        for u in job.children(v):
            cand = 1.0 if job.types[u] != job.types[v] else 1.0 + dist[u]
            dist[v] = min(dist[v], cand)
    return dist


class TestVectorizedMatchesNaive:
    """The reduceat-based sweeps must reproduce the textbook recursions.

    Exact equality is not required (summation order differs between the
    naive accumulation and the segment reductions) but agreement to
    tight float tolerance over many random jobs is.
    """

    def test_descendant_values_random_jobs(self, rng):
        from tests.conftest import make_random_job

        for _ in range(10):
            job = make_random_job(rng, n=60, k=3)
            np.testing.assert_allclose(
                descendant_values(job), _naive_descendant_values(job),
                rtol=1e-12, atol=1e-12,
            )

    def test_untyped_is_type_sum_random_jobs(self, rng):
        from tests.conftest import make_random_job

        for _ in range(10):
            job = make_random_job(rng, n=60, k=4)
            np.testing.assert_allclose(
                untyped_descendant_values(job),
                _naive_descendant_values(job).sum(axis=1),
                rtol=1e-12, atol=1e-12,
            )

    def test_remaining_span_random_jobs(self, rng):
        from tests.conftest import make_random_job

        for _ in range(10):
            job = make_random_job(rng, n=60, k=2)
            # max-reductions reorder nothing: exact equality expected.
            np.testing.assert_array_equal(
                remaining_span(job), _naive_remaining_span(job)
            )

    def test_different_child_distance_random_jobs(self, rng):
        from tests.conftest import make_random_job

        for _ in range(10):
            job = make_random_job(rng, n=60, k=3)
            np.testing.assert_array_equal(
                different_child_distance(job),
                _naive_different_child_distance(job),
            )

    def test_one_step_random_jobs(self, rng):
        from tests.conftest import make_random_job

        for _ in range(5):
            job = make_random_job(rng, n=50, k=3)
            n, k = job.n_tasks, job.num_types
            ref = np.zeros((n, k))
            in_deg = job.in_degrees()
            for v in range(n):
                for u in job.children(v):
                    ref[v, job.types[u]] += job.work[u] / in_deg[u]
            np.testing.assert_allclose(
                one_step_descendant_values(job), ref, rtol=1e-12, atol=1e-12
            )
