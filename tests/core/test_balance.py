"""Unit tests for the x-utilization balance order."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.balance import balance_key, compare_balance, x_utilization
from repro.errors import ResourceError


class TestXUtilization:
    def test_divides_by_processor_count(self):
        r = x_utilization([6.0, 4.0], [2, 4])
        assert list(r) == [3.0, 1.0]

    def test_shape_mismatch(self):
        with pytest.raises(ResourceError):
            x_utilization([1.0], [1, 2])

    def test_zero_processors_rejected(self):
        with pytest.raises(ResourceError):
            x_utilization([1.0], [0])

    def test_empty_queues_are_zero(self):
        assert list(x_utilization([0.0, 0.0], [3, 5])) == [0.0, 0.0]


class TestBalanceKey:
    def test_key_is_sorted_ascending(self):
        key = balance_key([9.0, 1.0, 4.0], [1, 1, 1])
        assert list(key) == [1.0, 4.0, 9.0]

    def test_key_uses_utilization_not_raw_work(self):
        # Queue works equal but processors differ -> keys differ.
        a = balance_key([4.0, 4.0], [1, 4])
        assert list(a) == [1.0, 4.0]


class TestCompareBalance:
    def test_better_min_wins(self):
        a = balance_key([2.0, 9.0], [1, 1])
        b = balance_key([1.0, 100.0], [1, 1])
        assert compare_balance(a, b) == 1
        assert compare_balance(b, a) == -1

    def test_tie_on_min_falls_to_next(self):
        a = balance_key([1.0, 5.0], [1, 1])
        b = balance_key([1.0, 4.0], [1, 1])
        assert compare_balance(a, b) == 1

    def test_exact_tie(self):
        a = balance_key([3.0, 7.0], [1, 1])
        b = balance_key([7.0, 3.0], [1, 1])  # order-insensitive
        assert compare_balance(a, b) == 0

    def test_shape_mismatch(self):
        with pytest.raises(ResourceError):
            compare_balance(np.array([1.0]), np.array([1.0, 2.0]))

    def test_paper_semantics_shortest_queue_is_bottleneck(self):
        """Raising the shortest queue beats raising a longer one."""
        base = np.array([0.0, 10.0])
        procs = [1, 1]
        feed_short = balance_key(base + np.array([3.0, 0.0]), procs)
        feed_long = balance_key(base + np.array([0.0, 3.0]), procs)
        assert compare_balance(feed_short, feed_long) == 1
