"""Unit tests for the KDag data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag
from repro.errors import CycleError, GraphError


class TestConstruction:
    def test_minimal_single_task(self):
        job = KDag(types=[0], work=[2.5])
        assert job.n_tasks == 1
        assert job.n_edges == 0
        assert job.num_types == 1
        assert job.work[0] == 2.5

    def test_num_types_inferred_from_max_type(self):
        job = KDag(types=[0, 2], work=[1, 1])
        assert job.num_types == 3

    def test_num_types_may_exceed_present_types(self):
        job = KDag(types=[0, 0], work=[1, 1], num_types=4)
        assert job.num_types == 4
        assert job.tasks_of_type(3).size == 0

    def test_type_out_of_range_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            KDag(types=[0, 3], work=[1, 1], num_types=2)

    def test_empty_job_rejected(self):
        with pytest.raises(GraphError, match="at least one task"):
            KDag(types=[], work=[])

    def test_work_length_mismatch_rejected(self):
        with pytest.raises(GraphError, match="does not match"):
            KDag(types=[0, 1], work=[1.0])

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_nonpositive_or_nonfinite_work_rejected(self, bad):
        with pytest.raises(GraphError, match="finite and positive"):
            KDag(types=[0], work=[bad])

    def test_negative_type_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            KDag(types=[-1], work=[1.0])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            KDag(types=[0, 0], work=[1, 1], edges=[(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            KDag(types=[0, 0], work=[1, 1], edges=[(0, 1), (0, 1)])

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            KDag(types=[0, 0], work=[1, 1], edges=[(0, 5)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            KDag(types=[0, 0, 0], work=[1, 1, 1], edges=[(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            KDag(types=[0, 0], work=[1, 1], edges=[(0, 1), (1, 0)])


class TestAdjacency:
    def test_diamond_children_parents(self, diamond_job):
        assert list(diamond_job.children(0)) == [1, 2]
        assert list(diamond_job.parents(3)) == [1, 2]
        assert diamond_job.n_children(0) == 2
        assert diamond_job.n_parents(3) == 2
        assert diamond_job.n_parents(0) == 0
        assert diamond_job.n_children(3) == 0

    def test_sources_and_sinks(self, diamond_job):
        assert list(diamond_job.sources()) == [0]
        assert list(diamond_job.sinks()) == [3]

    def test_degree_vectors(self, diamond_job):
        assert list(diamond_job.in_degrees()) == [0, 1, 1, 2]
        assert list(diamond_job.out_degrees()) == [2, 1, 1, 0]

    def test_degree_vectors_are_fresh_copies(self, diamond_job):
        d = diamond_job.in_degrees()
        d[0] = 99
        assert diamond_job.in_degrees()[0] == 0

    def test_tasks_of_type(self, diamond_job):
        assert list(diamond_job.tasks_of_type(0)) == [0, 3]
        assert list(diamond_job.tasks_of_type(1)) == [1, 2]

    def test_tasks_of_type_out_of_range(self, diamond_job):
        with pytest.raises(GraphError):
            diamond_job.tasks_of_type(5)


class TestTopology:
    def test_topological_order_respects_edges(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=60)
        pos = np.empty(job.n_tasks, dtype=int)
        pos[job.topological_order] = np.arange(job.n_tasks)
        for u, v in job.edges:
            assert pos[u] < pos[v]

    def test_depth_layers(self, chain_job):
        assert list(chain_job.depth) == [0, 1, 2]

    def test_depth_is_longest_path(self):
        # 0->1->3 and 0->3: depth of 3 must be 2 (via 1), not 1.
        job = KDag(types=[0] * 4, work=[1] * 4, edges=[(0, 1), (1, 3), (0, 3), (0, 2)])
        assert job.depth[3] == 2
        assert job.depth[2] == 1

    def test_precedes(self, diamond_job):
        assert diamond_job.precedes(0, 3)
        assert diamond_job.precedes(0, 1)
        assert not diamond_job.precedes(1, 2)
        assert not diamond_job.precedes(3, 0)
        assert not diamond_job.precedes(0, 0)

    def test_reachable_mask(self, diamond_job):
        mask = diamond_job.subgraph_reachable_from([1])
        assert list(np.flatnonzero(mask)) == [1, 3]

    def test_reachable_bad_root(self, diamond_job):
        with pytest.raises(GraphError):
            diamond_job.subgraph_reachable_from([9])


class TestValueSemantics:
    def test_equality_and_hash(self, diamond_job):
        clone = KDag(
            types=[0, 1, 1, 0],
            work=[1.0, 2.0, 3.0, 1.0],
            edges=[(0, 1), (0, 2), (1, 3), (2, 3)],
            num_types=2,
        )
        assert clone == diamond_job
        assert hash(clone) == hash(diamond_job)

    def test_inequality_on_work(self, diamond_job):
        other = KDag(
            types=[0, 1, 1, 0],
            work=[1.0, 2.0, 3.0, 2.0],
            edges=[(0, 1), (0, 2), (1, 3), (2, 3)],
            num_types=2,
        )
        assert other != diamond_job

    def test_arrays_are_read_only(self, diamond_job):
        with pytest.raises(ValueError):
            diamond_job.work[0] = 5.0
        with pytest.raises(ValueError):
            diamond_job.types[0] = 1

    def test_len(self, diamond_job):
        assert len(diamond_job) == 4

    def test_edges_deduplicated_and_sorted_adjacency(self):
        job = KDag(types=[0, 0, 0], work=[1, 1, 1], edges=[(0, 2), (0, 1)])
        assert list(job.children(0)) == [1, 2]


class TestLevelsAndCsrGather:
    def test_levels_partition_all_nodes_by_depth(self, rng):
        from tests.conftest import make_random_job

        for _ in range(5):
            job = make_random_job(rng, n=40, k=3)
            order, level_ptr = job.levels()
            assert sorted(order.tolist()) == list(range(job.n_tasks))
            assert level_ptr[0] == 0 and level_ptr[-1] == job.n_tasks
            depth = job.depth
            for li in range(len(level_ptr) - 1):
                nodes = order[level_ptr[li] : level_ptr[li + 1]]
                assert (depth[nodes] == li).all()

    def test_levels_cached_and_read_only(self, diamond_job):
        order, ptr = diamond_job.levels()
        order2, ptr2 = diamond_job.levels()
        assert order is order2 and ptr is ptr2
        assert not order.flags.writeable and not ptr.flags.writeable

    def test_every_edge_crosses_levels(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=40, k=2)
        depth = job.depth
        for u, v in job.edges:
            assert depth[v] > depth[u]

    def test_csr_gather_matches_per_node_slices(self, rng):
        from repro.core.kdag import csr_gather
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=30, k=2)
        nodes = np.array([5, 0, 17, 3, 17], dtype=np.int64)  # dups allowed
        kids, seg = csr_gather(job.child_ptr, job.child_idx, nodes)
        expected = [job.children(int(v)).tolist() for v in nodes]
        assert kids.tolist() == [c for kid in expected for c in kid]
        counts = np.diff(np.append(seg, len(kids)))
        assert counts.tolist() == [len(e) for e in expected]

    def test_csr_gather_empty_nodes(self, diamond_job):
        from repro.core.kdag import csr_gather

        kids, seg = csr_gather(
            diamond_job.child_ptr,
            diamond_job.child_idx,
            np.empty(0, dtype=np.int64),
        )
        assert len(kids) == 0 and len(seg) == 0

    def test_adjacency_properties_read_only(self, diamond_job):
        for arr in (
            diamond_job.child_ptr,
            diamond_job.child_idx,
            diamond_job.parent_ptr,
            diamond_job.parent_idx,
        ):
            assert not arr.flags.writeable
