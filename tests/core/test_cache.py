"""Tests for the memoized offline-information cache.

The cache must be invisible except for speed: values equal the pure
passes, hits return the shared read-only array, and a different job —
however similar — can never be served another job's matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import descendants as desc
from repro.core.cache import (
    cached_descendant_values,
    cached_different_child_distance,
    cached_due_dates,
    cached_one_step_descendant_values,
    cached_remaining_span,
    cached_untyped_descendant_values,
    clear_offline_cache,
    offline_cache_info,
)
from repro.core.kdag import KDag
from repro.schedulers.info import (
    ExactInformation,
    ExponentialInformation,
    NoisyInformation,
)

PAIRS = [
    (cached_descendant_values, desc.descendant_values),
    (cached_one_step_descendant_values, desc.one_step_descendant_values),
    (cached_untyped_descendant_values, desc.untyped_descendant_values),
    (cached_remaining_span, desc.remaining_span),
    (cached_different_child_distance, desc.different_child_distance),
    (cached_due_dates, desc.due_dates),
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_offline_cache()
    yield
    clear_offline_cache()


class TestCorrectnessAndIdentity:
    @pytest.mark.parametrize("cached, pure", PAIRS, ids=lambda p: p.__name__)
    def test_equals_pure_pass(self, cached, pure, fig1_job):
        np.testing.assert_array_equal(cached(fig1_job), pure(fig1_job))

    @pytest.mark.parametrize("cached, pure", PAIRS, ids=lambda p: p.__name__)
    def test_hit_returns_same_object(self, cached, pure, diamond_job):
        first = cached(diamond_job)
        assert cached(diamond_job) is first

    @pytest.mark.parametrize("cached, pure", PAIRS, ids=lambda p: p.__name__)
    def test_result_is_read_only(self, cached, pure, diamond_job):
        arr = cached(diamond_job)
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[..., 0] = 99.0

    def test_equal_content_shares_entry(self, diamond_job):
        twin = KDag(
            types=diamond_job.types.tolist(),
            work=diamond_job.work.tolist(),
            edges=[(int(u), int(v)) for u, v in diamond_job.edges],
            num_types=diamond_job.num_types,
        )
        assert twin is not diamond_job and twin == diamond_job
        assert cached_descendant_values(twin) is cached_descendant_values(
            diamond_job
        )

    def test_new_job_never_served_stale_entry(self, diamond_job):
        """A structurally different job gets its own fresh matrix."""
        baseline = cached_descendant_values(diamond_job)
        heavier = KDag(
            types=diamond_job.types.tolist(),
            work=(diamond_job.work * 2.0).tolist(),
            edges=[(int(u), int(v)) for u, v in diamond_job.edges],
            num_types=diamond_job.num_types,
        )
        fresh = cached_descendant_values(heavier)
        assert fresh is not baseline
        np.testing.assert_array_equal(fresh, desc.descendant_values(heavier))
        assert not np.array_equal(fresh, baseline)


class TestBookkeeping:
    def test_clear_and_info_counters(self, diamond_job, chain_job):
        cached_remaining_span(diamond_job)
        cached_remaining_span(diamond_job)
        cached_remaining_span(chain_job)
        info = offline_cache_info()["remaining_span"]
        assert info == {"hits": 1, "misses": 2, "currsize": 2}
        clear_offline_cache()
        info = offline_cache_info()["remaining_span"]
        assert info == {"hits": 0, "misses": 0, "currsize": 0}

    def test_due_dates_reuses_remaining_span_entry(self, fig1_job):
        cached_due_dates(fig1_job)
        assert offline_cache_info()["remaining_span"]["misses"] == 1
        # A direct remaining-span query is now a hit, not a recompute.
        cached_remaining_span(fig1_job)
        assert offline_cache_info()["remaining_span"]["hits"] >= 1


class TestStochasticModelsStayFresh:
    """Exp/Noise must redraw noise per prepare; only base values cache."""

    @pytest.mark.parametrize(
        "model_cls", [ExponentialInformation, NoisyInformation]
    )
    def test_fresh_noise_per_prepare(self, model_cls, fig1_job):
        model = model_cls()
        rng = np.random.default_rng(42)
        a = model.descendant_matrix(fig1_job, rng)
        b = model.descendant_matrix(fig1_job, rng)
        assert not np.array_equal(a, b)  # same cached base, fresh noise

    @pytest.mark.parametrize(
        "model_cls", [ExponentialInformation, NoisyInformation]
    )
    def test_same_seed_reproduces(self, model_cls, fig1_job):
        model = model_cls()
        a = model.descendant_matrix(fig1_job, np.random.default_rng(7))
        b = model.descendant_matrix(fig1_job, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_noisy_matrix_is_writable_copy(self, fig1_job):
        """Noise layering must not touch the shared cached base."""
        base = cached_descendant_values(fig1_job)
        before = base.copy()
        out = NoisyInformation().descendant_matrix(
            fig1_job, np.random.default_rng(0)
        )
        assert out is not base
        np.testing.assert_array_equal(base, before)

    def test_exact_model_returns_cached_object(self, fig1_job):
        model = ExactInformation()
        assert model.descendant_matrix(fig1_job, None) is cached_descendant_values(
            fig1_job
        )
