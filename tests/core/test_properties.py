"""Unit tests for aggregate K-DAG properties (work, span, lower bound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, critical_path, lower_bound, span, total_work, type_work
from repro.core.properties import work_per_processor
from repro.errors import ResourceError


class TestTypeWork:
    def test_fig1_quantities(self, fig1_job):
        """The paper's Fig. 1 example: T1 = (7, 4, 3), span 7."""
        assert list(type_work(fig1_job)) == [7.0, 4.0, 3.0]
        assert span(fig1_job) == 7.0
        assert total_work(fig1_job) == 14.0

    def test_type_work_includes_absent_types(self):
        job = KDag(types=[0], work=[3.0], num_types=3)
        assert list(type_work(job)) == [3.0, 0.0, 0.0]

    def test_total_is_sum_of_types(self, diamond_job):
        assert total_work(diamond_job) == pytest.approx(
            float(type_work(diamond_job).sum())
        )


class TestSpan:
    def test_single_task(self):
        assert span(KDag(types=[0], work=[4.0])) == 4.0

    def test_chain_span_is_total(self, chain_job):
        assert span(chain_job) == 3.0

    def test_diamond_takes_heavier_branch(self, diamond_job):
        # 0(1) -> 2(3) -> 3(1) = 5.
        assert span(diamond_job) == 5.0

    def test_independent_tasks_span_is_max(self):
        job = KDag(types=[0, 0, 0], work=[2.0, 7.0, 3.0])
        assert span(job) == 7.0

    def test_span_counts_work_not_hops(self):
        # Short heavy path (work 10+10) beats long light one (1*4).
        job = KDag(
            types=[0] * 6,
            work=[10, 10, 1, 1, 1, 1],
            edges=[(0, 1), (2, 3), (3, 4), (4, 5)],
        )
        assert span(job) == 20.0


class TestCriticalPath:
    def test_chain(self, chain_job):
        assert critical_path(chain_job) == [0, 1, 2]

    def test_diamond(self, diamond_job):
        assert critical_path(diamond_job) == [0, 2, 3]

    def test_path_work_equals_span(self, rng):
        from tests.conftest import make_random_job

        for _ in range(10):
            job = make_random_job(rng, n=30)
            path = critical_path(job)
            assert float(job.work[path].sum()) == pytest.approx(span(job))
            for u, v in zip(path, path[1:]):
                assert v in job.children(u)


class TestLowerBound:
    def test_span_dominates(self, chain_job):
        assert lower_bound(chain_job, [5, 5, 5]) == 3.0

    def test_work_dominates(self):
        job = KDag(types=[0] * 10, work=[1.0] * 10)
        assert lower_bound(job, [2]) == 5.0

    def test_fig1_bounds(self, fig1_job):
        # T1/P = (7/1, 4/1, 3/1) -> max 7 == span.
        assert lower_bound(fig1_job, [1, 1, 1]) == 7.0
        # More type-0 procs: span still dominates.
        assert lower_bound(fig1_job, [2, 1, 1]) == 7.0

    def test_work_per_processor(self, fig1_job):
        assert list(work_per_processor(fig1_job, [1, 2, 3])) == [7.0, 2.0, 1.0]

    def test_processor_shape_mismatch(self, fig1_job):
        with pytest.raises(ResourceError):
            lower_bound(fig1_job, [1, 1])

    def test_nonpositive_processors(self, fig1_job):
        with pytest.raises(ResourceError):
            lower_bound(fig1_job, [1, 0, 1])

    def test_lower_bound_never_exceeds_any_makespan(self, rng):
        """L(J) must lower-bound every legal schedule's makespan."""
        from tests.conftest import make_random_job
        from repro import ResourceConfig, make_scheduler, simulate

        for _ in range(5):
            job = make_random_job(rng, n=25, k=2)
            system = ResourceConfig((2, 2))
            result = simulate(job, system, make_scheduler("kgreedy"))
            assert result.makespan >= lower_bound(job, [2, 2]) - 1e-9
