"""Unit tests for KDagBuilder."""

from __future__ import annotations

import pytest

from repro import KDagBuilder
from repro.errors import GraphError


class TestAddTask:
    def test_ids_are_dense(self):
        b = KDagBuilder(num_types=2)
        assert b.add_task(0) == 0
        assert b.add_task(1) == 1
        assert b.n_tasks == 2

    def test_default_work_is_unit(self):
        b = KDagBuilder(num_types=1)
        b.add_task(0)
        assert b.build().work[0] == 1.0

    def test_invalid_type(self):
        b = KDagBuilder(num_types=2)
        with pytest.raises(GraphError, match="out of range"):
            b.add_task(2)

    def test_invalid_work(self):
        b = KDagBuilder(num_types=1)
        with pytest.raises(GraphError, match="positive"):
            b.add_task(0, work=0.0)

    def test_invalid_num_types(self):
        with pytest.raises(GraphError):
            KDagBuilder(num_types=0)

    def test_add_tasks_bulk(self):
        b = KDagBuilder(num_types=1)
        ids = b.add_tasks(0, 2.0, 5)
        assert ids == [0, 1, 2, 3, 4]
        job = b.build()
        assert all(job.work == 2.0)

    def test_add_tasks_negative_count(self):
        b = KDagBuilder(num_types=1)
        with pytest.raises(GraphError):
            b.add_tasks(0, 1.0, -1)


class TestLabels:
    def test_label_roundtrip(self):
        b = KDagBuilder(num_types=1)
        tid = b.add_task(0, label="map-0")
        assert b.id_of("map-0") == tid
        assert b.label_of(tid) == "map-0"

    def test_duplicate_label_rejected(self):
        b = KDagBuilder(num_types=1)
        b.add_task(0, label="x")
        with pytest.raises(GraphError, match="duplicate"):
            b.add_task(0, label="x")

    def test_unknown_label(self):
        b = KDagBuilder(num_types=1)
        with pytest.raises(GraphError, match="unknown"):
            b.id_of("nope")

    def test_unlabeled_task(self):
        b = KDagBuilder(num_types=1)
        tid = b.add_task(0)
        assert b.label_of(tid) is None

    def test_label_of_out_of_range(self):
        b = KDagBuilder(num_types=1)
        with pytest.raises(GraphError):
            b.label_of(3)


class TestEdges:
    def test_edge_validation_is_eager(self):
        b = KDagBuilder(num_types=1)
        b.add_task(0)
        with pytest.raises(GraphError, match="unknown task"):
            b.add_edge(0, 1)

    def test_self_loop(self):
        b = KDagBuilder(num_types=1)
        b.add_task(0)
        with pytest.raises(GraphError, match="self loop"):
            b.add_edge(0, 0)

    def test_duplicate_edge(self):
        b = KDagBuilder(num_types=1)
        b.add_tasks(0, 1.0, 2)
        b.add_edge(0, 1)
        with pytest.raises(GraphError, match="duplicate"):
            b.add_edge(0, 1)

    def test_chain_helper(self):
        b = KDagBuilder(num_types=1)
        ids = b.add_tasks(0, 1.0, 4)
        b.chain(ids)
        job = b.build()
        assert job.n_edges == 3
        assert job.precedes(0, 3)

    def test_add_edges_bulk(self):
        b = KDagBuilder(num_types=1)
        b.add_tasks(0, 1.0, 3)
        b.add_edges([(0, 1), (0, 2)])
        assert b.n_edges == 2


class TestBuild:
    def test_empty_build_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            KDagBuilder(num_types=1).build()

    def test_build_preserves_types_and_num_types(self):
        b = KDagBuilder(num_types=5)
        b.add_task(3, 2.0)
        job = b.build()
        assert job.num_types == 5
        assert job.types[0] == 3

    def test_cycle_detected_at_build(self):
        from repro.errors import CycleError

        b = KDagBuilder(num_types=1)
        b.add_tasks(0, 1.0, 2)
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        with pytest.raises(CycleError):
            b.build()

    def test_fig1_reconstruction(self, fig1_job):
        assert fig1_job.n_tasks == 14
        assert fig1_job.num_types == 3
