"""Work-stealing engine: identity anchor, dispatch, telemetry, events.

The load-bearing check is the **degenerate limit**: with
``StealPolicy(victims="global", cost=0)`` the per-processor deques
collapse into one shared pool per type and the decentralized engine
must reproduce :func:`repro.sim.engine.simulate` bit-for-bit.  CI runs
the wider ``scripts/check_decentral_identity.py`` guard; the tests
here pin the same anchor on one cell plus everything around it —
routing, rejection of non-decentral schedulers, steal telemetry and
the STEAL event stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decentral import (
    DKGreedy,
    DMQB,
    StealPolicy,
    dispatch_simulate,
    make_decentral_scheduler,
    simulate_decentralized,
)
from repro.errors import ConfigurationError
from repro.obs.events import STEAL, EventStream
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.engine import simulate
from repro.sim.validate import validate_schedule
from repro.system.resources import ResourceConfig
from repro.workloads.generator import WORKLOAD_CELLS, sample_job

PAIRS = (("dkgreedy[global]", "kgreedy"), ("dmqb[global]", "mqb"))
STEALING_NAMES = (
    "dkgreedy", "dmqb", "dkgreedy[half]", "dmqb[cost=0.25]",
    "dkgreedy[half,cost=0.5]",
)


def _instance(cell: str = "small-random-ep", p: int = 3, seed: int = 0):
    spec = WORKLOAD_CELLS[cell]
    job = sample_job(spec, np.random.default_rng(seed))
    return job, ResourceConfig((p,) * spec.num_types)


class TestDegenerateIdentity:
    @pytest.mark.parametrize(("dec_name", "cen_name"), PAIRS)
    def test_bit_identical_to_centralized(self, dec_name, cen_name):
        job, system = _instance()
        cen = simulate(
            job, system, make_scheduler(cen_name),
            rng=np.random.default_rng(3), record_trace=True,
        )
        dec = simulate_decentralized(
            job, system, make_scheduler(dec_name),
            rng=np.random.default_rng(3), record_trace=True,
        )
        assert dec.makespan == cen.makespan
        assert dec.decisions == cen.decisions
        assert dec.trace.segments == cen.trace.segments

    def test_degenerate_attempts_equal_successes(self):
        # In the shared-pool limit a "steal" is any dispatch off a
        # processor's non-home queue entry; there is no miss path.
        job, system = _instance()
        t = Telemetry()
        simulate_decentralized(
            job, system, make_scheduler("dkgreedy[global]"),
            rng=np.random.default_rng(3), telemetry=t,
        )
        assert t.counters.get("steal.attempts", 0) == t.counters.get(
            "steal.successes", 0
        )
        assert "steal.failed_empty" not in t.counters


class TestDispatch:
    def test_routes_decentral_scheduler(self):
        job, system = _instance()
        res = dispatch_simulate(
            job, system, make_scheduler("dkgreedy"),
            rng=np.random.default_rng(0),
        )
        assert res.scheduler == "dkgreedy"

    def test_routes_centralized_scheduler_through_simulate(self):
        job, system = _instance()
        rng = lambda: np.random.default_rng(5)
        via_dispatch = dispatch_simulate(
            job, system, make_scheduler("mqb"), rng=rng(), record_trace=True
        )
        direct = simulate(
            job, system, make_scheduler("mqb"), rng=rng(), record_trace=True
        )
        assert via_dispatch.makespan == direct.makespan
        assert via_dispatch.trace.segments == direct.trace.segments

    def test_rejects_centralized_scheduler(self):
        job, system = _instance()
        with pytest.raises(ConfigurationError):
            simulate_decentralized(job, system, make_scheduler("kgreedy"))


class TestRegistry:
    def test_names_registered(self):
        names = available_schedulers()
        for name in ("dkgreedy", "dmqb", "dkgreedy[half]", "dmqb[global]"):
            assert name in names

    def test_bracket_suffix_is_part_of_the_name(self):
        s = make_scheduler("dkgreedy[half,cost=0.5]")
        assert s.name == "dkgreedy[half,cost=0.5]"
        assert s.steal_policy == StealPolicy(amount="half", cost=0.5)

    def test_make_decentral_scheduler_classes(self):
        assert isinstance(make_decentral_scheduler("dkgreedy"), DKGreedy)
        assert isinstance(make_decentral_scheduler("dmqb"), DMQB)

    def test_unknown_decentral_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_decentral_scheduler("dlspan")


class TestStealTelemetry:
    def test_counters_and_idle_histogram(self):
        job, system = _instance(p=4)
        t = Telemetry()
        res = simulate_decentralized(
            job, system, make_scheduler("dkgreedy"),
            rng=np.random.default_rng(1), telemetry=t,
        )
        attempts = t.counters.get("steal.attempts", 0)
        hits = t.counters.get("steal.successes", 0)
        misses = t.counters.get("steal.failed_empty", 0)
        assert attempts == hits + misses
        assert t.counters.get("steal.tasks_moved", 0) >= hits
        # Per-processor idle time: one histogram sample per processor,
        # each in [0, makespan].
        count, total, lo, hi = t.histograms["decentral.proc_idle"]
        assert count == system.total
        assert 0.0 <= lo <= hi <= res.makespan + 1e-9
        assert total <= system.total * res.makespan + 1e-9

    def test_steal_events_emitted(self):
        job, system = _instance(p=4)
        events = EventStream()
        simulate_decentralized(
            job, system, make_scheduler("dkgreedy"),
            rng=np.random.default_rng(1), telemetry=Telemetry(events=events),
        )
        steals = list(events.of_kind(STEAL))
        assert steals
        for e in steals:
            assert set(e.data) >= {"alpha", "thief", "victim", "n", "ok"}
            assert e.data["thief"] != e.data["victim"]
            assert (e.data["n"] > 0) == e.data["ok"]

    @pytest.mark.parametrize("name", STEALING_NAMES)
    def test_observability_never_perturbs_the_schedule(self, name):
        job, system = _instance(p=4)
        runs = []
        for telemetry in (None, NULL_TELEMETRY, Telemetry(events=EventStream())):
            res = simulate_decentralized(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(2), record_trace=True,
                telemetry=telemetry,
            )
            runs.append((res.makespan, res.decisions, res.trace.segments))
        assert runs[0] == runs[1] == runs[2]


class TestStealingVariants:
    @pytest.mark.parametrize("name", STEALING_NAMES)
    def test_valid_schedule(self, name):
        job, system = _instance(p=4)
        res = simulate_decentralized(
            job, system, make_scheduler(name),
            rng=np.random.default_rng(0), record_trace=True,
        )
        validate_schedule(job, system, res.trace, res.makespan)

    def test_steal_cost_delays_but_never_loses_work(self):
        # With a steal cost the stolen work starts later, so the
        # makespan can only stay or grow vs the free-steal policy.
        job, system = _instance(p=4)

        def run(name):
            return simulate_decentralized(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(9), record_trace=True,
            )

        free = run("dkgreedy")
        costly = run("dkgreedy[cost=4]")
        validate_schedule(job, system, costly.trace, costly.makespan)
        assert costly.makespan >= free.makespan - 1e-9
