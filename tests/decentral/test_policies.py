"""StealPolicy construction, validation, naming and parsing."""

from __future__ import annotations

import pytest

from repro.decentral.policies import StealPolicy, parse_steal_options
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults(self):
        p = StealPolicy()
        assert (p.victims, p.amount, p.cost) == ("random", "one", 0.0)
        assert not p.is_degenerate

    def test_global_is_degenerate(self):
        assert StealPolicy(victims="global").is_degenerate

    def test_bad_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            StealPolicy(victims="nearest")

    def test_bad_amount_rejected(self):
        with pytest.raises(ConfigurationError):
            StealPolicy(amount="all")

    @pytest.mark.parametrize("cost", [-1.0, float("nan"), float("inf")])
    def test_bad_cost_rejected(self, cost):
        with pytest.raises(ConfigurationError):
            StealPolicy(cost=cost)

    def test_global_with_cost_rejected(self):
        # The degenerate limit is "one shared pool per type"; a steal
        # cost would break the bit-identity anchor, so it is an error.
        with pytest.raises(ConfigurationError):
            StealPolicy(victims="global", cost=0.5)

    def test_cost_coerced_to_float(self):
        assert StealPolicy(cost=1).cost == 1.0
        assert isinstance(StealPolicy(cost=1).cost, float)

    def test_frozen(self):
        with pytest.raises(Exception):
            StealPolicy().victims = "global"  # type: ignore[misc]


class TestSuffix:
    def test_default_policy_has_empty_suffix(self):
        assert StealPolicy().suffix() == ""

    @pytest.mark.parametrize(
        ("policy", "suffix"),
        [
            (StealPolicy(amount="half"), "[half]"),
            (StealPolicy(victims="global"), "[global]"),
            (StealPolicy(cost=0.5), "[cost=0.5]"),
            (StealPolicy(amount="half", cost=0.25), "[half,cost=0.25]"),
        ],
    )
    def test_non_default_knobs_appear(self, policy, suffix):
        assert policy.suffix() == suffix

    def test_fingerprint_covers_every_knob(self):
        fp = StealPolicy(amount="half", cost=2.0).fingerprint()
        assert fp == {"victims": "random", "amount": "half", "cost": 2.0}


class TestParse:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("", StealPolicy()),
            ("half", StealPolicy(amount="half")),
            ("global", StealPolicy(victims="global")),
            ("cost=0.5", StealPolicy(cost=0.5)),
            ("half,cost=0.25", StealPolicy(amount="half", cost=0.25)),
            ("random,one", StealPolicy()),
        ],
    )
    def test_roundtrip(self, text, expected):
        assert parse_steal_options(text) == expected

    def test_suffix_parses_back_to_the_policy(self):
        for policy in (
            StealPolicy(),
            StealPolicy(amount="half"),
            StealPolicy(victims="global"),
            StealPolicy(amount="half", cost=1.5),
        ):
            assert parse_steal_options(policy.suffix().strip("[]")) == policy

    def test_unknown_token_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_steal_options("steal-everything")

    def test_bad_cost_value_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_steal_options("cost=lots")
