"""Integration tests: miniature versions of the paper's headline claims.

The benchmark harness asserts these at figure scale; the versions here
run in a few seconds and guard the claims during normal development.
Every comparison uses the paired runner, so algorithm differences are
not sampling noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import run_comparison
from repro.workloads.generator import WORKLOAD_CELLS

N = 8  # instances per claim; paired design keeps this meaningful
SEED = 424242


def means(cell: str, algorithms, n=N, **kw) -> dict[str, float]:
    stats = run_comparison(WORKLOAD_CELLS[cell], algorithms, n, SEED, **kw)
    return {s.key: s.mean for s in stats}


@pytest.mark.slow
class TestFig4Claims:
    def test_random_workloads_flat(self):
        for cell in ("small-random-ep", "medium-random-ir"):
            m = means(cell, ["kgreedy", "mqb", "lspan"])
            assert all(v < 1.4 for v in m.values()), (cell, m)

    def test_layered_ep_mqb_beats_kgreedy_big(self):
        m = means("small-layered-ep", ["kgreedy", "mqb", "maxdp", "dtype"])
        assert m["mqb"] < 0.8 * m["kgreedy"]
        assert m["maxdp"] > m["mqb"]  # type-blind descendants misfire on EP

    def test_layered_tree_offline_wins(self):
        m = means("medium-layered-tree", ["kgreedy", "lspan", "mqb", "shiftbt"])
        for alg in ("lspan", "mqb", "shiftbt"):
            assert m[alg] < m["kgreedy"], m

    def test_layered_ir_mqb_maxdp_lead(self):
        m = means("medium-layered-ir", ["kgreedy", "mqb", "maxdp", "dtype"])
        assert m["mqb"] < m["kgreedy"]
        assert m["maxdp"] < m["dtype"], m


@pytest.mark.slow
class TestFig5Claim:
    def test_kgreedy_degrades_with_k(self):
        spec = WORKLOAD_CELLS["small-layered-ep"]
        ratios = []
        for k in (1, 4):
            stats = run_comparison(
                spec.with_num_types(k), ["kgreedy"], N, SEED + k
            )
            ratios.append(stats[0].mean)
        assert ratios[1] > ratios[0] + 0.3


@pytest.mark.slow
class TestFig6Claim:
    def test_skew_collapses_spread(self):
        algs = ["kgreedy", "mqb"]
        plain = means("medium-layered-ir", algs)
        skew = {
            s.key: s.mean
            for s in run_comparison(
                WORKLOAD_CELLS["medium-layered-ir"].with_skew(5), algs, N, SEED
            )
        }
        assert (skew["kgreedy"] - skew["mqb"]) < (
            plain["kgreedy"] - plain["mqb"]
        )


@pytest.mark.slow
class TestFig7Claim:
    def test_preemption_roughly_neutral(self):
        algs = ["kgreedy", "mqb"]
        np_m = means("small-layered-ep", algs, n=4)
        p_m = means("small-layered-ep", algs, n=4, preemptive=True)
        for alg in algs:
            assert abs(p_m[f"{alg} (P)"] - np_m[alg]) < 0.35


@pytest.mark.slow
class TestFig8Claim:
    def test_noisy_info_still_beats_kgreedy(self):
        m = means(
            "small-layered-ep",
            ["kgreedy", "mqb+all+noise", "mqb+1step+noise"],
        )
        assert m["mqb+all+noise"] < m["kgreedy"]
        assert m["mqb+1step+noise"] < m["kgreedy"]
