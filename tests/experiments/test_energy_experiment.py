"""Energy Pareto experiment: registration, sharding, cache, rejection.

Same contract family as the decentral sweep tests: bit-identical for
every worker count, answerable from the result cache on a warm repeat,
invalidated by any power-model flip — plus the explicit rejection
paths (batch engine, decentralized schedulers) this PR's bugfix
satellite pins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.models import power_config
from repro.errors import ConfigurationError
from repro.experiments.energy import (
    ENERGY_METRICS,
    ENERGY_POWER_SWEEP,
    energy_algorithm_names,
    pareto_front,
    run_energy,
    run_energy_comparison,
)
from repro.experiments.figures import DEFAULT_INSTANCES, EXPERIMENTS
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import PAPER_ALGORITHMS
from repro.workloads.generator import WORKLOAD_CELLS

SEED = 654
SPEC = WORKLOAD_CELLS["small-layered-ep"]
ALGS = ("kgreedy", "mqb", "emqb[w=1]", "kgreedy-consolidate[r=0.5]")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Enable the result cache, rooted in a fresh per-test directory."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


def _power(name: str = "hetero"):
    return power_config(name, SPEC.num_types)


class TestRegistration:
    def test_registered_with_default_budget(self):
        assert EXPERIMENTS["energy"] is run_energy
        assert DEFAULT_INSTANCES["energy"] == 12

    def test_sweep_covers_enough_power_configs(self):
        assert len(ENERGY_POWER_SWEEP) >= 3

    def test_algorithm_list_is_paper_plus_variants(self):
        names = energy_algorithm_names("hetero")
        assert names[: len(PAPER_ALGORITHMS)] == PAPER_ALGORITHMS
        extras = names[len(PAPER_ALGORITHMS):]
        assert len(extras) >= 2
        assert any(n.startswith("emqb") for n in extras)
        assert any(n.startswith("kgreedy-consolidate") for n in extras)


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = {
            "a": (1.0, 3.0),
            "b": (2.0, 2.0),
            "c": (3.0, 1.0),
            "d": (3.0, 3.0),  # dominated by b
        }
        assert pareto_front(points) == ["a", "b", "c"]

    def test_duplicates_both_survive(self):
        # Equal points do not dominate each other (<= in both but < in
        # neither), so both stay on the front.
        points = {"a": (1.0, 1.0), "b": (1.0, 1.0)}
        assert pareto_front(points) == ["a", "b"]

    def test_single_point_is_the_front(self):
        assert pareto_front({"solo": (5.0, 5.0)}) == ["solo"]


class TestComparison:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            run_energy_comparison(SPEC, _power(), 0, SEED)

    def test_rejects_decentral_algorithms(self):
        telemetry = Telemetry()
        with pytest.raises(ConfigurationError):
            run_energy_comparison(
                SPEC, _power(), 2, SEED,
                algorithms=("kgreedy", "dkgreedy"), telemetry=telemetry,
            )
        assert telemetry.counters.get("energy.rejected.decentral") == 1

    def test_worker_count_invariance(self):
        serial = run_energy_comparison(
            SPEC, _power(), 4, SEED, algorithms=ALGS, n_workers=1
        )
        sharded = run_energy_comparison(
            SPEC, _power(), 4, SEED, algorithms=ALGS, n_workers=2
        )
        assert serial == sharded

    def test_stats_shape_and_sanity(self):
        stats = run_energy_comparison(
            SPEC, _power(), 3, SEED, algorithms=ALGS
        )
        assert stats["n_instances"] == 3
        for name in ALGS:
            assert set(stats[name]) == set(ENERGY_METRICS)
            assert stats[name]["ratio"] >= 1.0 - 1e-9
            assert stats[name]["energy"] >= 1.0 - 1e-9  # busy floor
            assert stats[name]["profit"] <= 1.0 + 1e-9  # total value cap

    def test_warm_repeat_is_pure_cache_hits(self, cache_dir):
        cold = run_energy_comparison(SPEC, _power(), 3, SEED, algorithms=ALGS)
        warm_t = Telemetry()
        warm = run_energy_comparison(
            SPEC, _power(), 3, SEED, algorithms=ALGS, telemetry=warm_t
        )
        assert warm == cold
        assert warm_t.counters.get("cache.hits") == 3
        assert "cache.misses" not in warm_t.counters

    def test_power_flip_misses_the_cache(self, cache_dir):
        run_energy_comparison(SPEC, _power("hetero"), 2, SEED, algorithms=ALGS)
        t = Telemetry()
        run_energy_comparison(
            SPEC, _power("idle-heavy"), 2, SEED, algorithms=ALGS, telemetry=t
        )
        assert t.counters.get("cache.misses") == 2
        assert "cache.hits" not in t.counters

    def test_profit_knob_flip_misses_the_cache(self, cache_dir):
        run_energy_comparison(SPEC, _power(), 2, SEED, algorithms=ALGS)
        t = Telemetry()
        run_energy_comparison(
            SPEC, _power(), 2, SEED, algorithms=ALGS,
            deadline_factor=2.0, telemetry=t,
        )
        assert t.counters.get("cache.misses") == 2

    def test_telemetry_counts_runs_and_gaps(self):
        t = Telemetry()
        run_energy_comparison(
            SPEC, _power("shutdown"), 2, SEED, algorithms=ALGS,
            n_workers=1, telemetry=t,
        )
        assert t.counters.get("energy.runs") == 2 * len(ALGS)
        assert t.counters.get("energy.gaps", 0) > 0


class TestRunEnergy:
    def test_rejects_batch_engine(self):
        telemetry = Telemetry()
        with pytest.raises(ConfigurationError):
            run_energy(n_instances=1, engine="batch", telemetry=telemetry)
        assert telemetry.counters.get("energy.rejected.engine") == 1

    def test_rejects_batch_engine_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        with pytest.raises(ConfigurationError):
            run_energy(n_instances=1)

    def test_rejects_unknown_cell(self):
        with pytest.raises(ConfigurationError):
            run_energy(n_instances=1, cell="no-such-cell")

    def test_rejects_empty_power_sweep(self):
        with pytest.raises(ConfigurationError):
            run_energy(n_instances=1, power_names=())

    def test_result_shape(self):
        result = run_energy(
            n_instances=2, seed=SEED, cell="small-layered-ep",
            power_names=("baseline", "shutdown"),
        )
        assert result["figure"] == "energy"
        assert result["kind"] == "table"
        n_algs = len(energy_algorithm_names("baseline"))
        assert len(result["rows"]) == 2 * n_algs
        assert set(result["fronts"]) == {"baseline", "shutdown"}
        for front in result["fronts"].values():
            assert front  # never empty: some point is non-dominated
        starred = [r for r in result["rows"] if r[-1] == "*"]
        assert len(starred) == sum(len(f) for f in result["fronts"].values())
        assert result["config"]["power_configs"] == ["baseline", "shutdown"]
        np.testing.assert_allclose(
            [r[3] for r in result["rows"]],
            np.maximum([r[3] for r in result["rows"]], 1.0),
        )
