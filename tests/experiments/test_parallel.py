"""Determinism and plumbing tests for the process-parallel sweep runner.

The load-bearing property is exact: for any worker count and any chunk
partition, :func:`run_comparison_parallel` must return *bit-for-bit*
the same :class:`SeriesStats` as the serial loop — equality below is
``==`` on floats, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    _chunk_bounds,
    _run_chunk,
    plan_chunks,
    resolve_workers,
    run_comparison_parallel,
    run_sharded_instances,
)
from repro.experiments.runner import _stats_from_ratios, run_comparison
from repro.workloads.params import EPParams, IRParams, WorkloadSpec

TINY_EP = WorkloadSpec(
    "ep", "layered", "small",
    params=EPParams(branches_range=(3, 5), chain_length_range=(8, 12)),
)
TINY_IR = WorkloadSpec(
    "ir", "random", "small",
    params=IRParams(
        iterations_range=(2, 3), maps_range=(4, 8),
        reduces_range=(2, 3), fanin_range=(1, 2),
    ),
)

ALGS = ["kgreedy", "mqb", "lspan"]


class TestBitIdentical:
    @pytest.mark.parametrize("spec", [TINY_EP, TINY_IR], ids=["ep", "ir"])
    @pytest.mark.parametrize("workers", [2, 8])
    def test_matches_serial_exactly(self, spec, workers):
        serial = run_comparison(spec, ALGS, 10, seed=11, n_workers=1)
        par = run_comparison(spec, ALGS, 10, seed=11, n_workers=workers)
        # SeriesStats is a frozen dataclass of floats: == is bitwise.
        assert par == serial

    def test_chunk_size_one_matches_serial(self):
        serial = run_comparison(TINY_EP, ALGS, 7, seed=12, n_workers=1)
        par = run_comparison_parallel(
            TINY_EP, ALGS, 7, seed=12, n_workers=2, chunk_size=1
        )
        assert par == serial

    def test_preemptive_matches_serial(self):
        serial = run_comparison(
            TINY_EP, ALGS, 6, seed=13, preemptive=True, n_workers=1
        )
        par = run_comparison(
            TINY_EP, ALGS, 6, seed=13, preemptive=True, n_workers=2
        )
        assert par == serial

    def test_run_comparison_delegates_on_n_workers(self):
        """run_comparison(n_workers=N>1) routes through the pool path."""
        a = run_comparison(TINY_IR, ["kgreedy"], 8, seed=14)
        b = run_comparison(TINY_IR, ["kgreedy"], 8, seed=14, n_workers=3)
        assert a == b


class TestChunkAssembly:
    """Chunks computed out of order must assemble identically."""

    def _ratios_via_chunks(self, bounds):
        blocks = [
            _run_chunk(TINY_EP, tuple(ALGS), s, e, 21, False, 1.0)
            for s, e in bounds
        ]
        ratios = np.empty((len(ALGS), 9), dtype=np.float64)
        for start, block in blocks:
            ratios[:, start : start + block.shape[1]] = block
        return _stats_from_ratios(ALGS, ratios, False)

    def test_interleaved_and_reversed_chunk_order(self):
        forward = _chunk_bounds(9, 2)
        reference = self._ratios_via_chunks(forward)
        assert self._ratios_via_chunks(list(reversed(forward))) == reference
        interleaved = forward[::2] + forward[1::2]
        assert self._ratios_via_chunks(interleaved) == reference
        # And it all equals the serial runner.
        assert reference == run_comparison(TINY_EP, ALGS, 9, 21, n_workers=1)

    def test_chunk_bounds_cover_range_exactly(self):
        bounds = _chunk_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert _chunk_bounds(4, 100) == [(0, 4)]


def _identity_block(start: int, stop: int) -> np.ndarray:
    """1-row block whose entries are the instance indices themselves."""
    return np.arange(start, stop, dtype=np.float64)[None, :]


class TestChunkPlanning:
    """Chunk counts must be clamped to the remaining instances."""

    def test_never_more_chunks_than_instances(self):
        # n_instances < n_workers: the plan (and hence the pool) must
        # shrink to the work, not the worker count.
        chunks = plan_chunks([(0, 3)], 1)
        assert len(chunks) == 3
        for workers in (8, 64):
            size = max(1, -(-3 // (workers * 4)))
            assert len(plan_chunks([(0, 3)], size)) <= 3

    def test_segments_chunk_independently(self):
        assert plan_chunks([(0, 2), (5, 9)], 3) == [(0, 2), (5, 8), (8, 9)]
        assert plan_chunks([], 4) == []

    def test_small_sweep_more_workers_than_instances(self):
        # Regression (ISSUE 4): n_instances < n_workers must still
        # assemble the exact serial matrix.
        out = run_sharded_instances(_identity_block, 1, 3, n_workers=8)
        assert out.tolist() == [[0.0, 1.0, 2.0]]
        stats = run_comparison(TINY_EP, ["kgreedy"], 2, seed=44, n_workers=16)
        assert stats == run_comparison(TINY_EP, ["kgreedy"], 2, seed=44, n_workers=1)

    def test_segments_restrict_computation(self):
        out = np.full((1, 6), -1.0)
        result = run_sharded_instances(
            _identity_block, 1, 6, n_workers=1,
            segments=[(1, 3), (5, 6)], out=out,
        )
        assert result is out
        assert out.tolist() == [[-1.0, 1.0, 2.0, -1.0, -1.0, 5.0]]

    def test_segments_require_prefilled_out(self):
        with pytest.raises(ConfigurationError):
            run_sharded_instances(_identity_block, 1, 6, segments=[(0, 2)])

    def test_bad_segments_rejected(self):
        out = np.empty((1, 4))
        for segments in ([(2, 1)], [(0, 2), (1, 3)], [(0, 9)]):
            with pytest.raises(ConfigurationError):
                run_sharded_instances(
                    _identity_block, 1, 4, segments=segments, out=out
                )

    def test_on_chunk_sees_every_computed_block(self):
        seen: dict[int, list[float]] = {}
        run_sharded_instances(
            _identity_block, 1, 7, n_workers=1, chunk_size=3,
            on_chunk=lambda start, block: seen.__setitem__(
                start, block[0].tolist()
            ),
        )
        assert seen == {0: [0.0, 1.0, 2.0], 3: [3.0, 4.0, 5.0], 6: [6.0]}


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2

    def test_unset_env_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_empty_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert resolve_workers() == 1

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4

    def test_env_auto(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", ["0", "-2", "two", "1.5"])
    def test_env_rejects_garbage(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ConfigurationError):
            resolve_workers()

    def test_explicit_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)

    def test_env_routes_run_comparison(self, monkeypatch):
        """REPRO_WORKERS alone (no argument) engages the parallel path."""
        serial = run_comparison(TINY_EP, ["kgreedy"], 6, seed=31, n_workers=1)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert run_comparison(TINY_EP, ["kgreedy"], 6, seed=31) == serial


class TestValidation:
    def test_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            run_comparison_parallel(
                TINY_EP, ALGS, 4, seed=1, n_workers=2, chunk_size=0
            )

    def test_bad_instances(self):
        with pytest.raises(ConfigurationError):
            run_comparison_parallel(TINY_EP, ALGS, 0, seed=1, n_workers=2)

    def test_single_instance_falls_back_to_serial(self):
        stats = run_comparison_parallel(TINY_EP, ALGS, 1, seed=2, n_workers=4)
        assert stats == run_comparison(TINY_EP, ALGS, 1, seed=2, n_workers=1)


def _failing_block(start: int, stop: int) -> np.ndarray:
    """Worker that computes the first chunks, then blows up at index 6."""
    if start >= 6:
        raise RuntimeError(f"injected failure in chunk [{start}, {stop})")
    return _identity_block(start, stop)


class TestPoolShutdown:
    """A failed (or interrupted) sweep must not leak worker processes."""

    def test_worker_failure_propagates(self):
        with pytest.raises(RuntimeError, match="injected failure"):
            run_sharded_instances(
                _failing_block, 1, 12, n_workers=2, chunk_size=3
            )

    def test_worker_failure_reaps_children(self):
        import multiprocessing
        import time

        before = {p.pid for p in multiprocessing.active_children()}
        with pytest.raises(RuntimeError):
            run_sharded_instances(
                _failing_block, 1, 12, n_workers=2, chunk_size=3
            )
        # _terminate_pool joins with a timeout; give stragglers a beat.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = {
                p.pid for p in multiprocessing.active_children()
            } - before
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked

    def test_failure_does_not_hang_on_running_chunks(self):
        """Slow in-flight chunks must not stall the failure path: the
        call returns promptly instead of waiting out the whole pool."""
        import time

        t0 = time.monotonic()
        with pytest.raises(RuntimeError):
            run_sharded_instances(
                _failing_block_after_slow_start, 1, 16, n_workers=4,
                chunk_size=2,
            )
        assert time.monotonic() - t0 < 10.0


def _failing_block_after_slow_start(start: int, stop: int) -> np.ndarray:
    import time

    if start == 0:
        raise RuntimeError("fail fast")
    time.sleep(0.3)
    return _identity_block(start, stop)
