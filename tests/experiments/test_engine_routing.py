"""Engine selection: ``engine=`` / ``REPRO_ENGINE`` routing of sweeps.

The batch engine must be a pure drop-in: identical SeriesStats from
``run_comparison`` and ``run_comparison_parallel`` for either engine
value, selection via argument or environment variable, and — when the
batch engine owns the whole miss grid — no process pool at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import parallel as parallel_mod
from repro.experiments.parallel import run_comparison_parallel
from repro.experiments.runner import resolve_engine, run_comparison
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.workloads.generator import WORKLOAD_CELLS

SPEC = WORKLOAD_CELLS["small-layered-ep"]
ALGS = ("kgreedy", "lspan", "mqb")
SEED = 424242


class TestResolveEngine:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "scalar"
        assert resolve_engine(None) == "scalar"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        assert resolve_engine() == "batch"
        monkeypatch.setenv("REPRO_ENGINE", " SCALAR ")
        assert resolve_engine() == "scalar"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        assert resolve_engine("scalar") == "scalar"

    def test_invalid_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="engine"):
            resolve_engine("gpu")
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ConfigurationError, match="engine"):
            resolve_engine()


class TestBatchSweepIdentity:
    def test_stats_identical_to_scalar(self):
        scalar = run_comparison(SPEC, ALGS, 6, SEED)
        batch = run_comparison(SPEC, ALGS, 6, SEED, engine="batch")
        assert batch == scalar

    def test_env_var_routes_run_comparison(self, monkeypatch):
        scalar = run_comparison(SPEC, ALGS, 4, SEED)
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        tel = Telemetry()
        batch = run_comparison(SPEC, ALGS, 4, SEED, telemetry=tel)
        assert batch == scalar
        assert tel.counters["batch.instances"] > 0

    def test_fallback_algorithms_still_identical(self):
        algs = ("kgreedy", "random")
        scalar = run_comparison(SPEC, algs, 4, SEED)
        tel = Telemetry()
        batch = run_comparison(SPEC, algs, 4, SEED, engine="batch", telemetry=tel)
        assert batch == scalar
        assert tel.counters["batch.fallback"] == 4  # random's rows
        assert tel.counters["batch.instances"] == 4  # kgreedy's rows

    def test_preemptive_ignores_batch_engine(self):
        # The batch engine is non-preemptive only; preemptive sweeps
        # run scalar regardless of the requested engine.
        scalar = run_comparison(SPEC, ("kgreedy",), 2, SEED, preemptive=True)
        batch = run_comparison(
            SPEC, ("kgreedy",), 2, SEED, preemptive=True, engine="batch"
        )
        assert batch == scalar


class TestParallelPoolSkip:
    def test_batch_engine_never_builds_a_pool(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("batch sweep must not create a process pool")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        scalar = run_comparison(SPEC, ALGS, 4, SEED)
        batch = run_comparison_parallel(
            SPEC, ALGS, 4, SEED, n_workers=8, engine="batch"
        )
        assert batch == scalar

    def test_env_var_routes_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool built")),
        )
        scalar = run_comparison(SPEC, ALGS, 4, SEED, engine="scalar")
        assert run_comparison_parallel(SPEC, ALGS, 4, SEED, n_workers=8) == scalar


class TestTelemetryCost:
    def test_disabled_telemetry_changes_nothing(self):
        from repro import make_scheduler, simulate_batch
        from repro.workloads.generator import sample_instance

        instances = [
            sample_instance(SPEC, np.random.default_rng([5, i])) for i in range(3)
        ]
        bare = simulate_batch(instances, make_scheduler("mqb"))
        nulled = simulate_batch(
            instances, make_scheduler("mqb"), telemetry=NULL_TELEMETRY
        )
        assert [r.makespan for r in bare] == [r.makespan for r in nulled]
        # Disabled telemetry records nothing — the counters the enabled
        # path would populate must stay absent.
        assert NULL_TELEMETRY.counters == {}
