"""Unit tests for result rendering and persistence."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import render_result
from repro.experiments.store import load_result, save_result


BARS = {
    "figure": "figX",
    "title": "demo",
    "kind": "bars",
    "metric": "mean",
    "panels": [
        {
            "name": "cell",
            "label": "(a) Cell",
            "series": [
                {"key": "kgreedy", "mean": 2.5, "max": 3.0, "std": 0.1,
                 "stderr": 0.01, "n": 10},
                {"key": "mqb", "mean": 1.5, "max": 2.0, "std": 0.1,
                 "stderr": 0.01, "n": 10},
            ],
        }
    ],
    "config": {"n_instances": 10},
}

LINES = {
    "figure": "figY",
    "title": "lines demo",
    "kind": "lines",
    "panels": [
        {
            "name": "cell",
            "label": "(a) Cell",
            "x_label": "K",
            "x": [1, 2],
            "series": {"kgreedy": [1.0, 2.0], "mqb": [1.0, 1.2]},
        }
    ],
    "config": {},
}

TABLE = {
    "figure": "figZ",
    "title": "table demo",
    "kind": "table",
    "columns": ["n", "value"],
    "rows": [[10, 1.234], [20, 5.678]],
    "config": {},
}


class TestRender:
    def test_bars(self):
        out = render_result(BARS)
        assert "kgreedy" in out and "mqb" in out
        assert "2.5" in out
        assert "(a) Cell" in out

    def test_bars_with_max(self):
        r = dict(BARS, metric="mean+max")
        out = render_result(r)
        assert "max ratio" in out

    def test_lines(self):
        out = render_result(LINES)
        assert "K" in out.splitlines()[4]
        assert "1.2" in out

    def test_table(self):
        out = render_result(TABLE)
        assert "5.678" in out

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            render_result({"figure": "f", "title": "t", "kind": "pie"})


class TestMarkdown:
    def test_bars_markdown(self):
        from repro.experiments.report import render_markdown

        out = render_markdown(BARS)
        assert out.startswith("### figX")
        assert "| algorithm | mean ratio | stderr |" in out
        assert "| mqb | 1.500 |" in out

    def test_bars_markdown_with_max(self):
        from repro.experiments.report import render_markdown

        out = render_markdown(dict(BARS, metric="mean+max"))
        assert "max ratio" in out

    def test_lines_markdown(self):
        from repro.experiments.report import render_markdown

        out = render_markdown(LINES)
        assert "| K | kgreedy | mqb |" in out

    def test_table_markdown(self):
        from repro.experiments.report import render_markdown

        out = render_markdown(TABLE)
        assert "| 20 | 5.678 |" in out

    def test_unknown_kind(self):
        from repro.experiments.report import render_markdown

        with pytest.raises(ConfigurationError):
            render_markdown({"figure": "f", "title": "t", "kind": "pie"})


class TestStore:
    def test_roundtrip(self, tmp_path):
        path = save_result(BARS, tmp_path)
        assert path.name == "figX.json"
        assert load_result(path) == BARS

    def test_missing_figure_key(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_result({"title": "x"}, tmp_path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_result(tmp_path / "nope.json")

    def test_creates_directory(self, tmp_path):
        save_result(TABLE, tmp_path / "deep" / "dir")
        assert (tmp_path / "deep" / "dir" / "figZ.json").exists()

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        save_result(BARS, tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["figX.json"]

    def test_failed_write_preserves_previous_result(self, tmp_path):
        # A crash mid-serialization must leave the old file intact —
        # the tempfile + os.replace discipline, not truncate-in-place.
        save_result(BARS, tmp_path)
        before = (tmp_path / "figX.json").read_text()
        poisoned = {**BARS, "panels": [object()]}  # not JSON-serializable
        with pytest.raises(TypeError):
            save_result(poisoned, tmp_path)
        assert (tmp_path / "figX.json").read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["figX.json"]
