"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.experiment == "fig4"
        assert args.instances is None
        assert args.out is None

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "lemma1", "--instances", "50", "--seed", "9", "--out", "x"]
        )
        assert args.instances == 50
        assert args.seed == 9
        assert args.out == "x"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_fault_flags(self):
        args = build_parser().parse_args(
            [
                "run", "robustness",
                "--mtbf", "2.0", "--mttr", "0.5", "--fault-seed", "7",
            ]
        )
        assert args.mtbf == 2.0
        assert args.mttr == 0.5
        assert args.fault_seed == 7

    def test_fault_flags_default_none(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.mtbf is None and args.mttr is None
        assert args.fault_seed is None


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "lemma1" in out

    def test_run_lemma1_prints_table(self, capsys):
        assert main(["run", "lemma1", "--instances", "200"]) == 0
        out = capsys.readouterr().out
        assert "closed form" in out

    def test_run_saves_json(self, tmp_path, capsys):
        assert (
            main(
                [
                    "run", "lemma1", "--instances", "100",
                    "--out", str(tmp_path), "--quiet",
                ]
            )
            == 0
        )
        data = json.loads((tmp_path / "lemma1.json").read_text())
        assert data["figure"] == "lemma1"

    def test_report_rendering(self, tmp_path, capsys):
        main(["run", "lemma1", "--instances", "100", "--out", str(tmp_path),
              "--quiet"])
        capsys.readouterr()
        assert main(["report", str(tmp_path / "lemma1.json")]) == 0
        assert "closed form" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "fig99"])

    def test_run_robustness_saves_json(self, tmp_path, capsys):
        assert (
            main(
                [
                    "run", "robustness", "--instances", "1",
                    "--mtbf", "4.0", "--fault-seed", "3",
                    "--out", str(tmp_path), "--quiet",
                ]
            )
            == 0
        )
        data = json.loads((tmp_path / "robustness.json").read_text())
        assert data["figure"] == "robustness"
        assert data["config"]["fault_seed"] == 3
        assert data["config"]["rates"] == [0.0, 0.25]

    def test_fault_flags_rejected_for_other_experiments(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="fault parameters"):
            main(["run", "lemma1", "--instances", "10", "--mtbf", "2.0"])


class TestCells:
    def test_lists_paper_and_extra_cells(self, capsys):
        assert main(["cells"]) == 0
        out = capsys.readouterr().out
        assert "small-layered-ep" in out
        assert "medium-layered-cosmos" in out

    def test_marks_robustness_sweep_cells(self, capsys):
        assert main(["cells"]) == 0
        lines = capsys.readouterr().out.splitlines()
        marked = {
            line.split()[0] for line in lines if "[robustness sweep]" in line
        }
        assert marked == {
            "small-layered-ep", "medium-layered-tree", "medium-layered-ir"
        }


class TestDemo:
    def test_draws_gantt_and_utilization(self, capsys):
        assert (
            main(
                [
                    "demo", "small-layered-ep",
                    "--scheduler", "kgreedy", "--width", "40", "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "per-type utilization" in out
        assert "t0[0]" in out

    def test_preemptive_flag(self, capsys):
        assert (
            main(
                [
                    "demo", "small-random-ep",
                    "--scheduler", "lspan", "--width", "30",
                    "--preemptive",
                ]
            )
            == 0
        )
        assert "makespan" in capsys.readouterr().out

    def test_unknown_cell(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["demo", "nope-cell"])


class TestTrace:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace", "small-layered-ep"])
        assert args.cell == "small-layered-ep"
        assert args.scheduler == "mqb"
        assert args.out == "trace.json"
        assert args.jsonl is None

    def test_exports_chrome_trace_and_summary(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace", "small-layered-ep",
                    "--scheduler", "kgreedy", "--seed", "5",
                    "--out", str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "per-type utilization" in text
        assert "scheduler decision costs" in text
        assert "kgreedy" in text
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(ev.get("ph") == "X" for ev in doc["traceEvents"])

    def test_jsonl_round_trip(self, tmp_path, capsys):
        from repro.obs.export import read_events_jsonl

        jsonl = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "trace", "small-random-ep", "--scheduler", "lspan",
                    "--out", str(tmp_path / "t.json"),
                    "--jsonl", str(jsonl),
                ]
            )
            == 0
        )
        events = read_events_jsonl(jsonl)
        assert events
        assert {e.kind for e in events} >= {"slice", "decision", "sample"}

    def test_preemptive_flag(self, tmp_path, capsys):
        assert (
            main(
                [
                    "trace", "small-random-ep", "--preemptive",
                    "--out", str(tmp_path / "p.json"),
                ]
            )
            == 0
        )
        assert "per-type utilization" in capsys.readouterr().out

    def test_unknown_cell(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown workload cell"):
            main(["trace", "nope-cell", "--out", str(tmp_path / "t.json")])


class TestProfile:
    def test_prints_timer_table(self, capsys):
        assert main(["profile", "fig4", "--instances", "2"]) == 0
        out = capsys.readouterr().out
        assert "phase.engine_loop" in out
        assert "decision.mqb" in out

    def test_full_report(self, capsys):
        assert main(["profile", "fig8", "--instances", "2", "--full"]) == 0
        out = capsys.readouterr().out
        assert "engine phases" in out
        assert "counters" in out

    def test_unknown_experiment(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["profile", "fig99"])

    def test_theory_experiment_rejects_profiling(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="profiling"):
            main(["profile", "lemma1", "--instances", "10"])
