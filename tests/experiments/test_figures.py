"""Smoke tests for the per-figure experiment definitions.

These run every experiment at tiny instance counts: the goal is schema
and plumbing correctness; the real magnitudes are exercised by the
benchmark harness and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_contains_every_paper_figure(self):
        assert {"fig4", "fig5", "fig6", "fig7", "fig8"} <= set(EXPERIMENTS)

    def test_contains_theory_experiments(self):
        assert {"lemma1", "thm2"} <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


@pytest.mark.slow
class TestSchemas:
    def test_fig4_schema(self):
        r = run_experiment("fig4", n_instances=2, seed=1)
        assert r["kind"] == "bars"
        assert len(r["panels"]) == 6
        for panel in r["panels"]:
            keys = [s["key"] for s in panel["series"]]
            assert keys == ["kgreedy", "lspan", "dtype", "maxdp", "shiftbt", "mqb"]
            assert all(s["mean"] >= 1.0 - 1e-9 for s in panel["series"])

    def test_fig5_schema(self):
        r = run_experiment("fig5", n_instances=1, seed=1)
        assert r["kind"] == "lines"
        assert len(r["panels"]) == 3
        for panel in r["panels"]:
            assert panel["x"] == [1, 2, 3, 4, 5, 6]
            for series in panel["series"].values():
                assert len(series) == 6

    def test_fig6_schema(self):
        r = run_experiment("fig6", n_instances=2, seed=1)
        assert r["kind"] == "bars"
        assert len(r["panels"]) == 2
        assert r["config"]["skew_factor"] == 5

    def test_fig7_schema(self):
        r = run_experiment("fig7", n_instances=1, seed=1)
        assert len(r["panels"]) == 3
        keys = [s["key"] for s in r["panels"][0]["series"]]
        assert "kgreedy" in keys and "kgreedy (P)" in keys
        assert len(keys) == 12

    def test_fig8_schema(self):
        r = run_experiment("fig8", n_instances=2, seed=1)
        assert r["metric"] == "mean+max"
        keys = [s["key"] for s in r["panels"][0]["series"]]
        assert keys[0] == "kgreedy"
        assert len(keys) == 7

    def test_lemma1_schema(self):
        r = run_experiment("lemma1", n_instances=200, seed=1)
        assert r["kind"] == "table"
        for row in r["rows"]:
            n, rr, closed, exact, mc = row
            assert closed == pytest.approx(exact, rel=1e-9)
            assert mc == pytest.approx(closed, rel=0.1)

    def test_thm2_schema(self):
        r = run_experiment("thm2", n_instances=3, seed=1)
        assert r["kind"] == "table"
        for row in r["rows"]:
            _, _, empirical, bound_m, bound_inf, guarantee = row
            assert empirical <= guarantee + 0.5
            assert bound_m <= bound_inf + 1e-9
