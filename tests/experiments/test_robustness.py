"""Unit tests for the robustness experiment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.robustness import (
    FAILURE_RATES,
    run_robustness,
    run_robustness_comparison,
)
from repro.schedulers.registry import PAPER_ALGORITHMS
from repro.workloads.generator import WORKLOAD_CELLS

SPEC = WORKLOAD_CELLS["small-layered-ep"]
RATES = (0.0, 0.5)


class TestComparison:
    def test_parallel_identical_to_serial(self):
        # Acceptance: the sweep produces identical results for any
        # worker count (exact float equality, not approx).
        serial = run_robustness_comparison(
            SPEC, PAPER_ALGORITHMS, RATES, 4, 2018, n_workers=1
        )
        parallel = run_robustness_comparison(
            SPEC, PAPER_ALGORITHMS, RATES, 4, 2018, n_workers=2
        )
        assert serial == parallel

    def test_lambda_zero_inflation_is_exactly_one(self):
        out = run_robustness_comparison(
            SPEC, PAPER_ALGORITHMS, RATES, 2, 2018, n_workers=1
        )
        for name in PAPER_ALGORITHMS:
            assert out["inflation"][name][0] == 1.0
            assert out["wasted"][name][0] == 0.0
            assert out["kills"][name][0] == 0.0

    def test_failures_inflate_makespans(self):
        out = run_robustness_comparison(
            SPEC, PAPER_ALGORITHMS, RATES, 3, 2018, n_workers=1
        )
        assert any(
            out["inflation"][name][1] > 1.0 for name in PAPER_ALGORITHMS
        )
        assert all(
            out["kills"][name][1] >= 0.0 for name in PAPER_ALGORITHMS
        )

    def test_checkpoint_wastes_nothing(self):
        out = run_robustness_comparison(
            SPEC, PAPER_ALGORITHMS, RATES, 2, 2018,
            policy="checkpoint", n_workers=1,
        )
        for name in PAPER_ALGORITHMS:
            assert out["wasted"][name] == [0.0, 0.0]

    def test_fault_seed_changes_fault_runs_only(self):
        a = run_robustness_comparison(
            SPEC, ("kgreedy",), RATES, 2, 2018, fault_seed=1, n_workers=1
        )
        b = run_robustness_comparison(
            SPEC, ("kgreedy",), RATES, 2, 2018, fault_seed=2, n_workers=1
        )
        assert a["inflation"]["kgreedy"][0] == b["inflation"]["kgreedy"][0] == 1.0
        assert a["inflation"]["kgreedy"][1] != b["inflation"]["kgreedy"][1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_instances": 0},
            {"rates": (-0.5,)},
            {"rates": (float("inf"),)},
            {"mttr_factor": 0.0},
            {"horizon_factor": -1.0},
        ],
    )
    def test_bad_config(self, kwargs):
        base = dict(
            spec=SPEC, algorithms=("kgreedy",), rates=RATES,
            n_instances=2, seed=1,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            run_robustness_comparison(**base)


class TestRunRobustness:
    @pytest.mark.slow
    def test_result_shape(self):
        result = run_robustness(n_instances=1, mtbf=4.0, fault_seed=3)
        assert result["figure"] == "robustness"
        assert result["kind"] == "lines"
        assert len(result["panels"]) == 3
        for panel in result["panels"]:
            assert panel["x"] == [0.0, 0.25]  # mtbf=4 -> single rate 1/4
            assert set(panel["series"]) == set(PAPER_ALGORITHMS)
            assert set(panel["wasted"]) == set(PAPER_ALGORITHMS)
            for means in panel["series"].values():
                assert means[0] == 1.0
        assert result["config"]["fault_seed"] == 3

    def test_default_rate_grid(self):
        assert FAILURE_RATES == (0.0, 0.25, 0.5, 1.0)

    def test_bad_mtbf(self):
        with pytest.raises(ConfigurationError, match="mtbf"):
            run_robustness(n_instances=1, mtbf=0.0)
