"""Tests for the registered job-stream experiment (``repro run stream``)."""

from __future__ import annotations

import json

import numpy as np

from repro.cli import main
from repro.experiments.figures import DEFAULT_INSTANCES, EXPERIMENTS
from repro.experiments.stream import (
    STREAM_JOBS,
    STREAM_LOADS,
    STREAM_SPEC,
    _POLICIES,
    run_stream,
)
from repro.multijob import (
    STREAM_POLICIES,
    make_stream_scheduler,
    poisson_stream,
    simulate_stream,
)
from repro.workloads.generator import sample_system


class TestRegistry:
    def test_registered_experiment(self):
        assert EXPERIMENTS["stream"] is run_stream
        assert "stream" in DEFAULT_INSTANCES

    def test_policy_registry_round_trip(self):
        for name, cls in STREAM_POLICIES.items():
            sched = make_stream_scheduler(name)
            assert isinstance(sched, cls)
            assert sched.name == name

    def test_unknown_policy_rejected(self):
        import pytest

        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown stream policy"):
            make_stream_scheduler("nope")


class TestRunStream:
    def test_result_shape(self):
        result = run_stream(n_instances=2, seed=3)
        assert result["figure"] == "stream"
        assert result["kind"] == "bars"
        assert [p["name"] for p in result["panels"]] == [
            "light-load", "heavy-load",
        ]
        for panel in result["panels"]:
            assert [s["key"] for s in panel["series"]] == list(_POLICIES)
            for s in panel["series"]:
                assert s["n"] == 2
                assert s["mean"] > 0 and s["max"] >= s["mean"]

    def test_deterministic_and_worker_invariant(self):
        serial = run_stream(n_instances=3, seed=7, n_workers=1)
        again = run_stream(n_instances=3, seed=7, n_workers=1)
        parallel = run_stream(n_instances=3, seed=7, n_workers=2)
        assert serial == again == parallel

    def test_matches_direct_simulation(self):
        """Panel means reproduce hand-rolled simulate_stream calls."""
        n = 2
        result = run_stream(n_instances=n, seed=11)
        load_index, (_, gap) = 1, STREAM_LOADS[1]
        flows = {name: [] for name in _POLICIES}
        for i in range(n):
            rng = np.random.default_rng(np.random.SeedSequence([11, load_index, i]))
            system = sample_system(STREAM_SPEC, rng)
            stream = poisson_stream(STREAM_SPEC, STREAM_JOBS, gap, rng)
            for name in _POLICIES:
                r = simulate_stream(stream, system, make_stream_scheduler(name))
                flows[name].append(r.mean_flow_time)
        heavy = result["panels"][1]
        for s in heavy["series"]:
            assert s["mean"] == float(np.mean(flows[s["key"]]))


class TestCli:
    def test_run_stream_saves_json(self, tmp_path, capsys):
        assert main([
            "run", "stream", "--instances", "2", "--seed", "3",
            "--out", str(tmp_path), "--quiet",
        ]) == 0
        saved = json.loads((tmp_path / "stream.json").read_text())
        assert saved == run_stream(n_instances=2, seed=3)
