"""Decentral overhead experiment: registration, sharding, cache, shape.

The sweep must be bit-identical for every worker count (paired seeding
by instance index), answerable from the result cache on a warm repeat,
and safe with **ragged cells** — large-``P`` cells clamp to fewer
instances, so consecutive ``run_sharded_instances`` calls in one sweep
see different instance counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.decentral import (
    DECENTRAL_P_GRID,
    clamp_decentral_instances,
    decentral_spec,
    run_decentral,
    run_decentral_comparison,
)
from repro.experiments.figures import DEFAULT_INSTANCES, EXPERIMENTS
from repro.experiments.parallel import plan_chunks
from repro.obs.telemetry import Telemetry

SEED = 321


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Enable the result cache, rooted in a fresh per-test directory."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


class TestRegistration:
    def test_registered_with_default_budget(self):
        assert EXPERIMENTS["decentral"] is run_decentral
        assert DEFAULT_INSTANCES["decentral"] == 8

    def test_default_grid_reaches_the_thousands(self):
        assert DECENTRAL_P_GRID[-1] >= 1024


class TestClamp:
    def test_small_cells_keep_full_budget(self):
        assert clamp_decentral_instances(8, 4) == 8
        assert clamp_decentral_instances(8, 64) == 8

    def test_large_cells_clamped_but_never_zero(self):
        assert clamp_decentral_instances(8, 256) == 4
        assert clamp_decentral_instances(8, 1024) == 2
        assert clamp_decentral_instances(1, 1024) == 1


class TestRaggedChunkPlanning:
    """Regression: chunk plans for cells of differing instance counts.

    Every chunk must cover at least one instance and the plan must
    tile the segments exactly — also when a clamped cell leaves a
    single-instance segment, or segments are disjoint cache-miss
    remnants.
    """

    @pytest.mark.parametrize(
        "segments",
        [
            [(0, 8)],
            [(0, 1)],          # fully clamped cell
            [(0, 3), (5, 8)],  # cache-miss remnants
            [(2, 3), (7, 8)],  # singleton remnants
        ],
    )
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 8])
    def test_chunks_tile_segments_exactly(self, segments, chunk_size):
        chunks = plan_chunks(segments, chunk_size)
        assert all(stop > start for start, stop in chunks)
        covered = sorted(i for s, t in chunks for i in range(s, t))
        expected = sorted(i for s, t in segments for i in range(s, t))
        assert covered == expected
        assert len(chunks) <= len(expected)


class TestComparisonCell:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            run_decentral_comparison(0, 4, SEED)
        with pytest.raises(ConfigurationError):
            run_decentral_comparison(4, 0, SEED)

    def test_worker_count_invariance(self):
        serial = run_decentral_comparison(3, 4, SEED, n_workers=1)
        sharded = run_decentral_comparison(3, 4, SEED, n_workers=2)
        assert serial == sharded

    def test_cell_shape(self):
        cell = run_decentral_comparison(3, 2, SEED)
        assert set(cell["ratio"]) == {"kgreedy", "mqb", "dkgreedy", "dmqb"}
        assert set(cell["overhead"]) == {
            "dkgreedy / kgreedy", "dmqb / mqb",
        }
        assert all(v >= 1.0 - 1e-9 for v in cell["ratio"].values())
        assert all(v > 0.0 for v in cell["overhead"].values())

    def test_warm_repeat_is_pure_cache_hits(self, cache_dir):
        cold_t = Telemetry()
        cold = run_decentral_comparison(3, 4, SEED, telemetry=cold_t)
        warm_t = Telemetry()
        warm = run_decentral_comparison(3, 4, SEED, telemetry=warm_t)
        assert warm == cold
        assert warm_t.counters.get("cache.hits") == 4
        assert "cache.misses" not in warm_t.counters

    def test_policy_change_misses_the_cache(self, cache_dir):
        from repro.decentral.policies import StealPolicy

        run_decentral_comparison(3, 2, SEED)
        t = Telemetry()
        run_decentral_comparison(
            3, 2, SEED, policy=StealPolicy(amount="half"), telemetry=t
        )
        assert t.counters.get("cache.misses") == 2
        assert "cache.hits" not in t.counters


class TestRunDecentral:
    def test_result_shape_with_ragged_cells(self):
        # A grid spanning the clamp boundary: instance counts differ
        # per cell, and each cell still computes for 2 workers.
        result = run_decentral(
            n_instances=4, seed=SEED, p_grid=(2, 3), n_workers=2
        )
        assert result["figure"] == "decentral"
        assert result["kind"] == "lines"
        names = [p["name"] for p in result["panels"]]
        assert names == ["overhead", "ratio"]
        for panel in result["panels"]:
            assert panel["x"] == [2, 3]
            assert all(len(s) == 2 for s in panel["series"].values())
        assert result["config"]["steal"] == {
            "victims": "random", "amount": "one", "cost": 0.0,
        }

    def test_clamped_instance_counts_recorded(self):
        result = run_decentral(n_instances=4, seed=SEED, p_grid=(2,))
        assert result["config"]["instances_per_p"] == {"2": 4}
        assert result["config"]["n_instances"] == 4

    def test_workload_width_tracks_p(self):
        spec = decentral_spec(64)
        assert spec.effective_params.branches_range == (128, 128)
