"""Unit tests for the paired-comparison runner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_comparison
from repro.workloads.params import EPParams, WorkloadSpec


TINY_EP = WorkloadSpec(
    "ep", "layered", "small",
    params=EPParams(branches_range=(3, 5), chain_length_range=(8, 12)),
)


class TestRunComparison:
    def test_returns_stats_in_order(self):
        stats = run_comparison(TINY_EP, ["kgreedy", "mqb"], 5, seed=1)
        assert [s.key for s in stats] == ["kgreedy", "mqb"]
        assert all(s.n == 5 for s in stats)

    def test_ratios_at_least_one(self):
        stats = run_comparison(TINY_EP, ["kgreedy"], 5, seed=2)
        assert stats[0].mean >= 1.0 - 1e-9
        assert stats[0].maximum >= stats[0].mean

    def test_reproducible(self):
        a = run_comparison(TINY_EP, ["mqb"], 4, seed=3)
        b = run_comparison(TINY_EP, ["mqb"], 4, seed=3)
        assert a[0].mean == b[0].mean
        assert a[0].maximum == b[0].maximum

    def test_seed_changes_results(self):
        a = run_comparison(TINY_EP, ["kgreedy"], 4, seed=4)
        b = run_comparison(TINY_EP, ["kgreedy"], 4, seed=5)
        assert a[0].mean != b[0].mean

    def test_preemptive_suffix(self):
        stats = run_comparison(TINY_EP, ["kgreedy"], 2, seed=6, preemptive=True)
        assert stats[0].key == "kgreedy (P)"

    def test_invalid_instances(self):
        with pytest.raises(ConfigurationError):
            run_comparison(TINY_EP, ["kgreedy"], 0, seed=7)

    def test_single_instance_has_zero_std(self):
        stats = run_comparison(TINY_EP, ["kgreedy"], 1, seed=8)
        assert stats[0].std == 0.0
        assert stats[0].stderr == 0.0

    def test_to_dict(self):
        s = run_comparison(TINY_EP, ["kgreedy"], 2, seed=9)[0]
        d = s.to_dict()
        assert set(d) == {"key", "mean", "max", "std", "stderr", "n"}
