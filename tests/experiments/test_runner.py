"""Unit tests for the paired-comparison runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import _instance_ratios, run_comparison
from repro.schedulers.registry import make_scheduler
from repro.workloads.params import EPParams, WorkloadSpec


TINY_EP = WorkloadSpec(
    "ep", "layered", "small",
    params=EPParams(branches_range=(3, 5), chain_length_range=(8, 12)),
)


class TestRunComparison:
    def test_returns_stats_in_order(self):
        stats = run_comparison(TINY_EP, ["kgreedy", "mqb"], 5, seed=1)
        assert [s.key for s in stats] == ["kgreedy", "mqb"]
        assert all(s.n == 5 for s in stats)

    def test_ratios_at_least_one(self):
        stats = run_comparison(TINY_EP, ["kgreedy"], 5, seed=2)
        assert stats[0].mean >= 1.0 - 1e-9
        assert stats[0].maximum >= stats[0].mean

    def test_reproducible(self):
        a = run_comparison(TINY_EP, ["mqb"], 4, seed=3)
        b = run_comparison(TINY_EP, ["mqb"], 4, seed=3)
        assert a[0].mean == b[0].mean
        assert a[0].maximum == b[0].maximum

    def test_seed_changes_results(self):
        a = run_comparison(TINY_EP, ["kgreedy"], 4, seed=4)
        b = run_comparison(TINY_EP, ["kgreedy"], 4, seed=5)
        assert a[0].mean != b[0].mean

    def test_preemptive_suffix(self):
        stats = run_comparison(TINY_EP, ["kgreedy"], 2, seed=6, preemptive=True)
        assert stats[0].key == "kgreedy (P)"

    def test_invalid_instances(self):
        with pytest.raises(ConfigurationError):
            run_comparison(TINY_EP, ["kgreedy"], 0, seed=7)

    def test_single_instance_has_zero_std(self):
        stats = run_comparison(TINY_EP, ["kgreedy"], 1, seed=8)
        assert stats[0].std == 0.0
        assert stats[0].stderr == 0.0

    def test_to_dict(self):
        s = run_comparison(TINY_EP, ["kgreedy"], 2, seed=9)[0]
        d = s.to_dict()
        assert set(d) == {"key", "mean", "max", "std", "stderr", "n"}


class TestSchedulerReuse:
    """run_comparison constructs schedulers once and reuses them.

    prepare() must fully reset per-run state, so a scheduler instance
    that just finished one instance produces the same ratios as a
    freshly constructed one — bit for bit, including the stochastic
    information models (their noise comes from the per-instance rng,
    not construction-time state).
    """

    ALGS = ["kgreedy", "mqb", "lspan", "mqb+all+exp", "mqb+1step+noise"]

    def _fresh_reference(self, n):
        """Ratios with a brand-new scheduler per (instance, algorithm)."""
        ratios = np.empty((len(self.ALGS), n), dtype=np.float64)
        for i in range(n):
            schedulers = [make_scheduler(a) for a in self.ALGS]
            _instance_ratios(TINY_EP, schedulers, i, 77, False, 1.0, ratios[:, i])
        return ratios

    def test_reused_equals_fresh_construction(self):
        n = 6
        reference = self._fresh_reference(n)
        schedulers = [make_scheduler(a) for a in self.ALGS]  # reused across i
        reused = np.empty_like(reference)
        for i in range(n):
            _instance_ratios(TINY_EP, schedulers, i, 77, False, 1.0, reused[:, i])
        np.testing.assert_array_equal(reused, reference)

    def test_run_comparison_matches_fresh_reference(self):
        n = 6
        reference = self._fresh_reference(n)
        stats = run_comparison(TINY_EP, self.ALGS, n, seed=77)
        for a, s in enumerate(stats):
            assert s.mean == float(reference[a].mean())
            assert s.maximum == float(reference[a].max())
