"""Router end-to-end: affinity, failover, aggregation, bit-identity.

Every test drives a real :class:`ClusterRouter` over real sockets via
:func:`static_cluster` — in-thread shard daemons, so the full path
(framing → validation → ring → forward → passthrough) is exercised in
milliseconds without subprocess spawns.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.cluster.router import RouterConfig
from repro.cluster.testing import static_cluster
from repro.service.protocol import PROTOCOL_VERSION

CELL = "small-layered-ep"


def shard_tagger(index: int):
    """A schedule work fn that answers with the shard that ran it."""

    def work(payload: dict) -> dict:
        return {"shard": index, "seed": payload["seed"]}

    return work


def wait_healthy_count(client, count: int, timeout: float = 15.0) -> dict:
    """Poll the router's /healthz until it reports ``count`` healthy."""
    deadline = time.monotonic() + timeout
    body: dict = {}
    while time.monotonic() < deadline:
        body = client.request("GET", "/healthz").body
        if body.get("healthy_shards") == count:
            return body
        time.sleep(0.02)
    raise AssertionError(f"never reached {count} healthy shards: {body}")


class TestConfig:
    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(shards=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(retries=-1)


class TestAffinity:
    def test_identical_requests_land_on_the_same_shard(self):
        """Placement is a pure function of the content fingerprint:
        repeats land on the same shard and hit its response cache."""
        telemetry = Telemetry()
        cluster = static_cluster(
            3,
            telemetry=telemetry,
            per_shard_work_fns=[{"schedule": shard_tagger(i)} for i in range(3)],
        )
        with cluster:
            client = cluster.client()
            placement = {}
            for seed in range(32):
                body = client.post("schedule", {"cell": CELL, "seed": seed}).body
                assert body["status"] == "ok", body
                placement[seed] = body["result"]["shard"]
            # Repeats: same shard, answered from that shard's cache.
            for seed in (0, 7, 31):
                body = client.post("schedule", {"cell": CELL, "seed": seed}).body
                assert body["result"]["shard"] == placement[seed]
                assert body["source"] == "cached"
            # The ring spreads distinct fingerprints across the fleet.
            assert len(set(placement.values())) > 1
            counters = telemetry.counters
            routed_per_shard = [
                counters.get(f"router.routed.shard-{i}", 0) for i in range(3)
            ]
            assert sum(routed_per_shard) == counters["router.routed"]
            assert counters["router.routed"] == 32 + 3


class TestValidation:
    def test_malformed_requests_never_reach_a_shard(self):
        telemetry = Telemetry()
        with static_cluster(2, telemetry=telemetry) as cluster:
            client = cluster.client()
            response = client.post("schedule", {"cell": "nope"})
            assert response.status == 400
            assert response.error_code == "unknown_cell"
            response = client.post("schedule", {"cell": CELL, "typo": 1})
            assert response.status == 400
            assert telemetry.counters.get("router.routed", 0) == 0
            assert telemetry.counters["router.requests"] == 2

    def test_unknown_path_and_method(self):
        with static_cluster(1) as cluster:
            client = cluster.client()
            assert client.request("GET", "/nope").status == 404
            response = client.request("GET", "/schedule")
            assert response.status == 405
            assert response.error_code == "method_not_allowed"


class TestFailover:
    def test_requests_rebalance_around_a_dead_shard(self):
        telemetry = Telemetry()
        cluster = static_cluster(
            2,
            router_config=RouterConfig(health_interval=0.05, fail_threshold=2),
            telemetry=telemetry,
            per_shard_work_fns=[{"schedule": shard_tagger(i)} for i in range(2)],
        )
        with cluster:
            client = cluster.client()
            wait_healthy_count(client, 2)
            cluster.shard_threads[0].stop()
            wait_healthy_count(client, 1)
            # Every fingerprint — including those owned by the dead
            # shard — must still be answered, by the survivor.
            for seed in range(32):
                body = client.post("schedule", {"cell": CELL, "seed": seed}).body
                assert body["status"] == "ok", body
                assert body["result"]["shard"] == 1
            # ~half the keys had shard-0 as primary and were rebalanced.
            assert telemetry.counters["router.rebalanced"] >= 1

    def test_empty_ring_answers_structured_503(self):
        cluster = static_cluster(
            1,
            router_config=RouterConfig(health_interval=0.05, fail_threshold=2),
        )
        with cluster:
            client = cluster.client()
            cluster.shard_threads[0].stop()
            wait_healthy_count(client, 0)
            health = client.request("GET", "/healthz")
            assert health.status == 503
            assert health.body["status"] == "no_shards"
            response = client.post("schedule", {"cell": CELL, "seed": 0})
            assert response.status == 503
            assert response.error_code == "no_shards"
            assert response.retry_after is not None


class TestAggregation:
    def test_healthz_aggregates_supervised_state(self):
        with static_cluster(2) as cluster:
            body = cluster.client().healthz()
            assert body["protocol"] == PROTOCOL_VERSION
            assert body["status"] == "ok"
            assert body["role"] == "router"
            assert body["draining"] is False
            assert body["uptime"] >= 0.0
            assert body["healthy_shards"] == 2
            assert body["total_shards"] == 2
            assert len(body["shards"]) == 2
            for shard in body["shards"]:
                assert shard["healthy"] and shard["alive"]
                assert shard["url"].startswith("http://127.0.0.1:")

    def test_metrics_merges_shard_telemetry(self):
        with static_cluster(2) as cluster:
            client = cluster.client()
            for seed in range(3):
                assert client.post(
                    "schedule", {"cell": CELL, "seed": seed}
                ).ok
            body = client.metrics()
            assert body["role"] == "router"
            assert body["in_flight"] == 0
            assert body["router"]["counters"]["router.routed"] == 3
            cluster_counters = body["cluster"]["counters"]
            assert cluster_counters["service.requests.schedule"] == 3
            assert len(body["shards"]) == 2
            for shard in body["shards"]:
                assert isinstance(shard["metrics"], dict)
                assert "telemetry" in shard["metrics"]


class TestDrain:
    def test_coordinated_drain_is_clean(self):
        cluster = static_cluster(2)
        client = cluster.client()
        assert client.post("schedule", {"cell": CELL, "seed": 1}).ok
        assert cluster.stop() is True


class TestBitIdentity:
    def test_two_shards_answer_byte_identically_to_one(self):
        """The acceptance criterion: sharding is invisible in the data.

        The same request set is sent to a 1-shard and a 2-shard
        cluster; every ``result`` payload must serialize to identical
        bytes (the router passes shard answers through verbatim, and
        the computation is deterministic in the request fingerprint).
        """
        requests = [
            ("schedule", {"cell": CELL, "scheduler": "mqb", "seed": seed})
            for seed in range(4)
        ] + [
            ("schedule", {"cell": CELL, "scheduler": "kgreedy", "seed": 9}),
            (
                "sweep",
                {
                    "cell": CELL,
                    "algorithms": ["mqb", "kgreedy"],
                    "n_instances": 2,
                    "seed": 17,
                },
            ),
            (
                "stream",
                {"cell": CELL, "policy": "global-mqb", "n_jobs": 2, "seed": 3},
            ),
        ]

        def collect(n_shards: int) -> list[bytes]:
            results = []
            with static_cluster(n_shards) as cluster:
                client = cluster.client()
                for kind, payload in requests:
                    response = client.post(kind, payload)
                    assert response.ok, (n_shards, kind, response.body)
                    results.append(
                        json.dumps(
                            response.body["result"], sort_keys=True
                        ).encode("utf-8")
                    )
            return results

        assert collect(1) == collect(2)
