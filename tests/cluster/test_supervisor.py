"""Worker supervision: backoff, health eviction, restart, drain.

Static-mode tests put the supervisor in front of in-thread daemons
(:class:`ServiceThread`) so eviction/recovery is observable in
milliseconds; the managed test spawns one real ``repro serve``
subprocess and kill-9s it, because restart semantics (new pid, same
port, clean SIGTERM exit afterwards) only exist at the OS level.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.cluster.workers import WorkerSpec, WorkerSupervisor, serve_command
from repro.service.testing import ServiceThread, free_port


def static_spec(shard_id: str, port: int) -> WorkerSpec:
    return WorkerSpec(shard_id=shard_id, host="127.0.0.1", port=port)


class TestConfig:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerSupervisor([])

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerSupervisor([static_spec("s0", 1), static_spec("s0", 2)])

    def test_backoff_is_capped_exponential(self):
        supervisor = WorkerSupervisor(
            [static_spec("s0", 1)], backoff_base=0.5, backoff_cap=10.0
        )
        delays = [supervisor.backoff_delay(k) for k in range(6)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 10.0]

    def test_static_spec_has_no_command(self):
        spec = static_spec("s0", 8512)
        assert not spec.managed
        assert spec.url == "http://127.0.0.1:8512"

    def test_serve_command_mirrors_cli_flags(self):
        cmd = serve_command(8512, rate_limit=5.0, default_deadline=2.0)
        assert "serve" in cmd
        assert "--port" in cmd and "8512" in cmd
        assert "--rate-limit" in cmd and "--default-deadline" in cmd


class TestStaticSupervision:
    def test_probe_tracks_live_then_dead_shard(self):
        """One failed probe is tolerated; ``fail_threshold`` evicts."""
        shard = ServiceThread().start()
        telemetry = Telemetry()

        async def scenario():
            supervisor = WorkerSupervisor(
                [static_spec("s0", shard.port)],
                fail_threshold=2,
                probe_timeout=2.0,
                telemetry=telemetry,
            )
            worker = supervisor.workers["s0"]
            await supervisor._probe(worker)
            assert worker.healthy
            assert supervisor.healthy_ids() == ["s0"]
            summary = supervisor.summary()[0]
            assert summary["healthy"] and summary["alive"]
            assert not summary["managed"]
            # Kill the shard: the next single probe failure must NOT
            # evict (a GC pause is not an outage)...
            await asyncio.get_running_loop().run_in_executor(None, shard.stop)
            await supervisor._probe(worker)
            assert worker.healthy
            assert worker.consecutive_failures == 1
            # ...the second consecutive failure does.
            await supervisor._probe(worker)
            assert not worker.healthy
            assert supervisor.healthy_ids() == []
            # Nothing managed to stop: drain is trivially clean.
            assert await supervisor.drain(timeout=5.0)

        try:
            asyncio.run(scenario())
        finally:
            shard.stop()
        counters = telemetry.snapshot().counters
        assert counters["supervisor.health_failures"] == 2

    def test_recovery_resets_failure_count(self):
        shard = ServiceThread().start()
        telemetry = Telemetry()
        try:

            async def scenario():
                supervisor = WorkerSupervisor(
                    [static_spec("s0", shard.port)],
                    fail_threshold=2,
                    telemetry=telemetry,
                )
                worker = supervisor.workers["s0"]
                worker.consecutive_failures = 5  # as if it had been down
                await supervisor._probe(worker)
                assert worker.healthy
                assert worker.consecutive_failures == 0

            asyncio.run(scenario())
        finally:
            shard.stop()
        assert telemetry.snapshot().counters["supervisor.recovered"] == 1

    def test_draining_shard_is_treated_as_down(self):
        """A 503-draining shard fails probes exactly like a dead one."""
        shard = ServiceThread().start()
        try:
            assert shard.service is not None
            shard.service.admission.start_draining()

            async def scenario():
                supervisor = WorkerSupervisor(
                    [static_spec("s0", shard.port)], fail_threshold=2
                )
                worker = supervisor.workers["s0"]
                await supervisor._probe(worker)
                await supervisor._probe(worker)
                assert not worker.healthy

            asyncio.run(scenario())
        finally:
            shard.stop()

    def test_monitor_loop_marks_shard_healthy(self):
        shard = ServiceThread().start()
        try:

            async def scenario():
                supervisor = WorkerSupervisor(
                    [static_spec("s0", shard.port)], health_interval=0.05
                )
                await supervisor.start()
                assert await supervisor.wait_healthy(1, timeout=10.0)
                assert await supervisor.drain(timeout=5.0)

            asyncio.run(scenario())
        finally:
            shard.stop()


class TestManagedSupervision:
    def test_killed_worker_is_respawned_then_drains_cleanly(self):
        """kill -9 a managed shard: the supervisor respawns it on the
        same port with a new pid, it turns healthy again, and SIGTERM
        drain still exits 0."""
        port = free_port()
        spec = WorkerSpec(
            shard_id="s0",
            host="127.0.0.1",
            port=port,
            command=tuple(serve_command(port)),
        )
        telemetry = Telemetry()

        async def scenario():
            supervisor = WorkerSupervisor(
                [spec],
                health_interval=0.1,
                fail_threshold=2,
                backoff_base=0.05,
                backoff_cap=0.5,
                telemetry=telemetry,
            )
            await supervisor.start()
            try:
                assert await supervisor.wait_healthy(1, timeout=30.0)
                worker = supervisor.workers["s0"]
                assert worker.process is not None
                first_pid = worker.process.pid
                worker.process.kill()  # SIGKILL: a crash, not a drain
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if worker.healthy and worker.process.pid != first_pid:
                        break
                    await asyncio.sleep(0.05)
                assert worker.process.pid != first_pid
                assert worker.healthy
                assert worker.restarts >= 1
                summary = supervisor.summary()[0]
                assert summary["restarts"] >= 1 and summary["managed"]
            finally:
                clean = await supervisor.drain(timeout=20.0)
            assert clean  # the respawned child exited 0 on SIGTERM

        asyncio.run(scenario())
        counters = telemetry.snapshot().counters
        assert counters["supervisor.restarts"] >= 1
        assert counters["supervisor.spawned"] >= 2
