"""Consistent-hash ring properties: stability, balance, bounded movement."""

from __future__ import annotations

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing

KEYS = [f"key-{i}" for i in range(2000)]


class TestDeterminism:
    def test_same_membership_same_placement(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s0", "s1", "s2"])
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_insertion_order_is_irrelevant(self):
        a = HashRing(["s0", "s1", "s2", "s3"])
        b = HashRing(["s3", "s1", "s0", "s2"])
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_incremental_add_equals_fresh_build(self):
        grown = HashRing(["s0"])
        grown.add("s1")
        grown.add("s2")
        fresh = HashRing(["s0", "s1", "s2"])
        assert [grown.node_for(k) for k in KEYS] == [
            fresh.node_for(k) for k in KEYS
        ]


class TestMembershipChange:
    def test_adding_a_node_moves_keys_only_to_it(self):
        """The consistent-hashing contract: growth never reshuffles keys
        *between* existing nodes — every moved key lands on the newcomer."""
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add("s4")
        moved = 0
        for key in KEYS:
            after = ring.node_for(key)
            if after != before[key]:
                moved += 1
                assert after == "s4", key
        assert moved > 0

    def test_add_moves_a_bounded_fraction(self):
        """~1/n of the key space moves when the n-th node joins (allow
        generous slack for virtual-node variance)."""
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add("s4")
        moved = sum(1 for k in KEYS if ring.node_for(k) != before[k])
        assert moved / len(KEYS) < 0.40  # expectation is 1/5

    def test_remove_only_reassigns_the_leavers_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("s2")
        for key in KEYS:
            after = ring.node_for(key)
            if before[key] == "s2":
                assert after != "s2"
            else:
                assert after == before[key], key

    def test_remove_then_add_restores_placement(self):
        ring = HashRing(["s0", "s1", "s2"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("s1")
        ring.add("s1")
        assert {k: ring.node_for(k) for k in KEYS} == before

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["s0", "s1"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add("s0")
        ring.remove("nope")
        assert {k: ring.node_for(k) for k in KEYS} == before
        assert len(ring) == 2


class TestBalance:
    def test_load_is_roughly_uniform(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        counts: dict[str, int] = {}
        for key in KEYS:
            owner = ring.node_for(key)
            counts[owner] = counts.get(owner, 0) + 1
        mean = len(KEYS) / len(ring)
        assert max(counts.values()) / mean < 1.6
        assert set(counts) == {"s0", "s1", "s2", "s3"}


class TestPreference:
    def test_first_entry_is_the_owner(self):
        ring = HashRing(["s0", "s1", "s2"])
        for key in KEYS[:50]:
            assert ring.preference(key)[0] == ring.node_for(key)

    def test_preference_is_all_distinct_nodes(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for key in KEYS[:50]:
            chain = ring.preference(key)
            assert sorted(chain) == ["s0", "s1", "s2", "s3"]

    def test_preference_limit(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        chain = ring.preference("some-key", limit=2)
        assert len(chain) == 2
        assert chain == ring.preference("some-key")[:2]

    def test_preference_survives_primary_removal(self):
        """The failover chain is consistent: removing the primary
        promotes the old second choice for (almost) every key."""
        ring = HashRing(["s0", "s1", "s2", "s3"])
        samples = {k: ring.preference(k) for k in KEYS[:200]}
        ring.remove("s0")
        for key, chain in samples.items():
            if chain[0] == "s0":
                assert ring.node_for(key) == chain[1], key


class TestEdges:
    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in KEYS[:100])
        assert ring.preference("k") == ["only"]

    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_default_replicas(self):
        assert HashRing(["a"]).replicas == DEFAULT_REPLICAS
        assert "a" in HashRing(["a"])
