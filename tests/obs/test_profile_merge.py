"""Profiler tests: phase timing and worker-count-independent merging.

The contract under test: profiling a sharded sweep merges per-chunk
telemetry snapshots, so every **counter** total is identical for any
worker count (timers are wall-clock facts of the actual run and are
only checked for presence).
"""

from __future__ import annotations

import pytest

from repro.experiments.robustness import run_robustness_comparison
from repro.experiments.runner import run_comparison
from repro.obs.profile import PhaseProfiler, render_profile
from repro.obs.telemetry import Telemetry
from repro.workloads.generator import WORKLOAD_CELLS

ALGOS = ("kgreedy", "mqb")
SPEC = WORKLOAD_CELLS["small-layered-ep"]


class TestPhaseProfiler:
    def test_phase_accumulates_under_convention_key(self):
        prof = PhaseProfiler()
        with prof.phase("select"):
            pass
        with prof.phase("select"):
            pass
        snap = prof.snapshot()
        assert snap.timers["phase.select"][1] == 2

    def test_time_returns_value(self):
        prof = PhaseProfiler()
        assert prof.time("add", lambda a, b: a + b, 2, 3) == 5
        assert "phase.add" in prof.snapshot().timers

    def test_wraps_existing_telemetry(self):
        telemetry = Telemetry()
        prof = PhaseProfiler(telemetry)
        with prof.phase("x"):
            pass
        assert "phase.x" in telemetry.timers

    def test_render_profile(self):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        text = render_profile(prof.snapshot())
        assert "phase.x" in text
        assert render_profile(Telemetry().snapshot()) == "(no timers recorded)"


class TestMergedSweepProfiles:
    @pytest.mark.parametrize("preemptive", [False, True])
    def test_comparison_counters_match_across_worker_counts(self, preemptive):
        counters = {}
        for workers in (1, 4):
            telemetry = Telemetry()
            run_comparison(
                SPEC, ALGOS, 12, 99, preemptive=preemptive,
                n_workers=workers, telemetry=telemetry,
            )
            counters[workers] = dict(telemetry.counters)
        assert counters[1] == counters[4]
        assert counters[1]["sweep.instances"] == 12
        assert counters[1]["engine.runs"] == 12 * len(ALGOS)

    def test_comparison_timers_present_for_any_worker_count(self):
        for workers in (1, 4):
            telemetry = Telemetry()
            run_comparison(SPEC, ALGOS, 8, 99, n_workers=workers,
                           telemetry=telemetry)
            assert {"phase.prepare", "phase.engine_loop",
                    "phase.sample_instance"} <= set(telemetry.timers)
            for name in ALGOS:
                assert f"decision.{name}" in telemetry.timers

    def test_robustness_counters_match_across_worker_counts(self):
        counters = {}
        for workers in (1, 4):
            telemetry = Telemetry()
            run_robustness_comparison(
                SPEC, ALGOS, (0.0, 0.5), 6, 99,
                n_workers=workers, telemetry=telemetry,
            )
            counters[workers] = dict(telemetry.counters)
        assert counters[1] == counters[4]
        assert counters[1]["engine.kills"] >= 0

    def test_results_unchanged_by_profiling(self):
        plain = run_comparison(SPEC, ALGOS, 10, 7, n_workers=4)
        profiled = run_comparison(
            SPEC, ALGOS, 10, 7, n_workers=4, telemetry=Telemetry()
        )
        assert [s.to_dict() for s in plain] == [s.to_dict() for s in profiled]
