"""Unit tests for the structured event stream and its ring buffer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import EVENT_KINDS, Event, EventStream, SAMPLE, SLICE


class TestEvent:
    def test_to_dict_flattens_payload(self):
        e = Event(1.5, SLICE, {"task": 3, "alpha": 0, "proc": 2, "end": 4.0})
        d = e.to_dict()
        assert d == {"ts": 1.5, "kind": "slice", "task": 3, "alpha": 0,
                     "proc": 2, "end": 4.0}

    def test_from_dict_inverts_to_dict(self):
        e = Event(2.0, SAMPLE, {"ready": [1, 2], "free": [0, 1]})
        assert Event.from_dict(e.to_dict()) == e

    def test_kind_constants_are_distinct(self):
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)


class TestEventStream:
    def test_emit_preserves_order(self):
        s = EventStream()
        s.emit(SLICE, 0.0, task=0)
        s.emit(SLICE, 1.0, task=1)
        assert [e.data["task"] for e in s] == [0, 1]
        assert len(s) == 2
        assert s.dropped == 0

    def test_ring_buffer_drops_oldest(self):
        s = EventStream(capacity=3)
        for i in range(5):
            s.emit(SLICE, float(i), task=i)
        assert len(s) == 3
        assert s.emitted == 5
        assert s.dropped == 2
        assert [e.data["task"] for e in s] == [2, 3, 4]

    def test_of_kind_filters(self):
        s = EventStream()
        s.emit(SLICE, 0.0, task=0)
        s.emit(SAMPLE, 0.0, ready=[1], free=[1])
        s.emit(SLICE, 1.0, task=1)
        assert [e.data["task"] for e in s.of_kind(SLICE)] == [0, 1]

    def test_to_dicts(self):
        s = EventStream()
        s.emit(SLICE, 0.5, task=7)
        assert s.to_dicts() == [{"ts": 0.5, "kind": "slice", "task": 7}]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            EventStream(capacity=0)
