"""Unit tests for the Telemetry aggregates and snapshot merging."""

from __future__ import annotations

import pickle

from repro.obs.events import EventStream
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
)


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        t = Telemetry()
        t.inc("a")
        t.inc("a", 4)
        t.inc("b", 2)
        assert t.counters == {"a": 5, "b": 2}

    def test_timer_context_manager(self):
        t = Telemetry()
        with t.timer("phase.x"):
            pass
        with t.timer("phase.x"):
            pass
        total, calls = t.timers["phase.x"]
        assert calls == 2
        assert total >= 0.0

    def test_observe_tracks_count_sum_min_max(self):
        t = Telemetry()
        for v in (5.0, 1.0, 3.0):
            t.observe("h", v)
        assert t.histograms["h"] == [3, 9.0, 1.0, 5.0]

    def test_emit_without_stream_is_noop(self):
        t = Telemetry()
        t.emit("slice", 1.0, task=0)  # must not raise

    def test_emit_forwards_to_stream(self):
        stream = EventStream()
        t = Telemetry(events=stream)
        t.emit("slice", 1.0, task=0)
        assert len(stream) == 1


class TestSnapshot:
    def _sample(self) -> Telemetry:
        t = Telemetry()
        t.inc("c", 3)
        t.add_time("phase.x", 0.5)
        t.observe("h", 2.0)
        return t

    def test_snapshot_freezes_state(self):
        t = self._sample()
        snap = t.snapshot()
        t.inc("c")
        assert snap.counters["c"] == 3

    def test_round_trips_through_dict(self):
        snap = self._sample().snapshot()
        again = TelemetrySnapshot.from_dict(snap.to_dict())
        assert again == snap

    def test_snapshot_is_picklable(self):
        snap = self._sample().snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_sums_counters_and_timers(self):
        a = self._sample().snapshot()
        b = self._sample().snapshot()
        merged = a.merge(b)
        assert merged.counters["c"] == 6
        assert merged.timers["phase.x"] == (1.0, 2)
        assert merged.histograms["h"] == (2, 4.0, 2.0, 2.0)

    def test_merge_is_associative_on_counters(self):
        snaps = [self._sample().snapshot() for _ in range(3)]
        left = snaps[0].merge(snaps[1]).merge(snaps[2])
        right = snaps[0].merge(snaps[1].merge(snaps[2]))
        assert left.counters == right.counters
        assert merge_snapshots(snaps).counters == left.counters

    def test_merge_empty_is_identity(self):
        snap = self._sample().snapshot()
        assert TelemetrySnapshot().merge(snap) == snap
        assert snap.merge(TelemetrySnapshot()) == snap

    def test_merge_snapshot_accepts_dict_form(self):
        t = Telemetry()
        t.merge_snapshot(self._sample().snapshot().to_dict())
        t.merge_snapshot(self._sample().snapshot())
        assert t.counters["c"] == 6
        assert t.timers["phase.x"] == [1.0, 2]


class TestNullTelemetry:
    def test_disabled_flag(self):
        assert NullTelemetry().enabled is False
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry().enabled is True

    def test_hooks_record_nothing(self):
        t = NullTelemetry()
        t.inc("c")
        t.add_time("phase.x", 1.0)
        t.observe("h", 1.0)
        t.emit("slice", 0.0)
        snap = t.snapshot()
        assert snap.counters == {} and snap.timers == {} and snap.histograms == {}
