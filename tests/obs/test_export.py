"""Exporter tests: Chrome trace-event structure and JSONL round-trips.

The Chrome trace checks encode what Perfetto / ``chrome://tracing``
actually require to load a file: a ``traceEvents`` list, monotonically
non-decreasing ``ts`` over the event body, complete (``"X"``) events
with non-negative durations, and a consistent pid/tid mapping (pid =
resource type, tid = processor lane).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.events import EventStream, SLICE
from repro.obs.export import (
    chrome_trace,
    read_events_jsonl,
    render_summary,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance


@pytest.fixture(scope="module")
def traced_run():
    """One traced KGreedy run on the small EP cell."""
    job, system = sample_instance(
        WORKLOAD_CELLS["small-layered-ep"], np.random.default_rng(11)
    )
    telemetry = Telemetry(events=EventStream())
    result = simulate(
        job, system, make_scheduler("kgreedy"),
        rng=np.random.default_rng(11), telemetry=telemetry,
    )
    return job, system, telemetry, result


class TestChromeTrace:
    def test_document_shape(self, traced_run):
        _, system, telemetry, _ = traced_run
        doc = chrome_trace(telemetry.events, resources=system)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]

    def test_body_sorted_by_ts(self, traced_run):
        _, system, telemetry, _ = traced_run
        doc = chrome_trace(telemetry.events, resources=system)
        body = [ev for ev in doc["traceEvents"] if ev["ph"] != "M"]
        ts = [ev["ts"] for ev in body]
        assert ts == sorted(ts)

    def test_x_events_cover_every_task_once(self, traced_run):
        job, system, telemetry, _ = traced_run
        doc = chrome_trace(telemetry.events, resources=system)
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        # Non-preemptive engine: exactly one complete event per task.
        assert len(xs) == job.n_tasks
        assert all(ev["dur"] >= 0 for ev in xs)

    def test_pid_tid_map_to_type_and_proc(self, traced_run):
        job, system, telemetry, _ = traced_run
        doc = chrome_trace(telemetry.events, resources=system)
        for ev in doc["traceEvents"]:
            if ev["ph"] != "X":
                continue
            alpha, proc = ev["pid"], ev["tid"]
            assert 0 <= alpha < system.num_types
            assert 0 <= proc < system.counts[alpha]
            assert int(job.types[ev["args"]["task"]]) == alpha

    def test_scale_converts_sim_time(self, traced_run):
        _, system, telemetry, result = traced_run
        doc = chrome_trace(telemetry.events, resources=system, scale=10.0)
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert max(ev["ts"] + ev["dur"] for ev in xs) == pytest.approx(
            result.makespan * 10.0
        )

    def test_metadata_names_every_lane(self, traced_run):
        _, system, telemetry, _ = traced_run
        doc = chrome_trace(telemetry.events, resources=system)
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        procs = {
            ev["pid"]
            for ev in meta
            if ev["name"] == "process_name" and "type" in ev["args"]["name"]
        }
        assert procs == set(range(system.num_types))

    def test_write_is_valid_json(self, traced_run, tmp_path):
        _, system, telemetry, _ = traced_run
        path = write_chrome_trace(
            telemetry.events, tmp_path / "t.json", resources=system
        )
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_stream_slices_lane_by_job(self):
        s = EventStream()
        s.emit(SLICE, 0.0, jid=4, task=1, alpha=0, proc=-1, end=2.0)
        doc = chrome_trace(s)
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert xs[0]["tid"] == 4
        assert xs[0]["name"] == "J4 task 1"


class TestJsonl:
    def test_round_trip(self, traced_run, tmp_path):
        _, _, telemetry, _ = traced_run
        path = tmp_path / "events.jsonl"
        n = write_events_jsonl(telemetry.events, path)
        events = read_events_jsonl(path)
        assert n == len(events) == len(telemetry.events)
        assert events == list(telemetry.events)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_events_jsonl(EventStream(), path) == 0
        assert read_events_jsonl(path) == []


class TestSummary:
    def test_reports_decision_costs_and_utilization(self, traced_run):
        _, system, telemetry, result = traced_run
        text = render_summary(
            telemetry.snapshot(),
            events=telemetry.events,
            resources=system,
            makespan=result.makespan,
        )
        assert "kgreedy" in text
        assert "per-type utilization" in text
        for a in range(system.num_types):
            assert f"t{a}" in text

    def test_busy_matches_total_work(self, traced_run):
        job, system, telemetry, result = traced_run
        text = render_summary(
            telemetry.snapshot(),
            events=telemetry.events,
            resources=system,
            makespan=result.makespan,
        )
        # Per-type busy columns must sum to the job's total work.
        busy = 0.0
        for line in text.splitlines():
            parts = line.split()
            if parts and parts[0].startswith("t") and parts[0][1:].isdigit():
                busy += float(parts[2])
        assert busy == pytest.approx(float(job.work.sum()))

    def test_warns_about_dropped_events(self):
        job, system = sample_instance(
            WORKLOAD_CELLS["small-layered-ep"], np.random.default_rng(3)
        )
        telemetry = Telemetry(events=EventStream(capacity=8))
        simulate(
            job, system, make_scheduler("lspan"),
            rng=np.random.default_rng(3), telemetry=telemetry,
        )
        text = render_summary(
            telemetry.snapshot(), events=telemetry.events, resources=system
        )
        assert "ring buffer dropped" in text

    def test_empty_snapshot(self):
        from repro.obs.telemetry import TelemetrySnapshot

        assert render_summary(TelemetrySnapshot()) == "(no telemetry recorded)"
