"""Zero-overhead-when-disabled guarantees of the observability layer.

Two families of checks:

* **Bit-identity** — for every paper scheduler and a sample of cells,
  running any engine with ``telemetry=None``, with the disabled
  :data:`~repro.obs.telemetry.NULL_TELEMETRY`, or with a fully enabled
  tracing context produces identical results: telemetry observes, it
  never influences.
* **Wall clock** — the disabled path stays within a generous factor of
  the uninstrumented baseline (the instrumentation is hoisted out of
  the inner loops, so the true overhead is one attribute check per
  run; the bound is loose because CI timing is noisy).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.faults.engine import simulate_with_faults
from repro.faults.models import ExponentialFaults
from repro.obs.events import EventStream
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.schedulers.registry import PAPER_ALGORITHMS, make_scheduler
from repro.sim.engine import simulate
from repro.sim.preemptive import simulate_preemptive
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

CELLS = ("small-layered-ep", "small-random-ep")


def _instance(cell: str, seed: int = 0):
    return sample_instance(WORKLOAD_CELLS[cell], np.random.default_rng(seed))


def _fingerprint(result) -> tuple:
    return (result.makespan, result.decisions)


@pytest.mark.parametrize("cell", CELLS)
@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
class TestBitIdentity:
    def test_event_engine(self, name, cell):
        job, system = _instance(cell)
        runs = []
        for telemetry in (None, NULL_TELEMETRY, Telemetry(events=EventStream())):
            res = simulate(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(1), telemetry=telemetry,
            )
            runs.append(_fingerprint(res))
        assert runs[0] == runs[1] == runs[2]

    def test_preemptive_engine(self, name, cell):
        job, system = _instance(cell)
        runs = []
        for telemetry in (None, NULL_TELEMETRY, Telemetry(events=EventStream())):
            res = simulate_preemptive(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(1), telemetry=telemetry,
            )
            runs.append(_fingerprint(res))
        assert runs[0] == runs[1] == runs[2]

    def test_fault_engine(self, name, cell):
        job, system = _instance(cell)
        timeline = ExponentialFaults(mtbf=40.0, mttr=5.0).sample(
            system, 400.0, np.random.default_rng(7)
        )
        runs = []
        for telemetry in (None, NULL_TELEMETRY, Telemetry(events=EventStream())):
            res = simulate_with_faults(
                job, system, make_scheduler(name), timeline,
                rng=np.random.default_rng(1), telemetry=telemetry,
            )
            runs.append((res.makespan, res.kills, res.wasted_work))
        assert runs[0] == runs[1] == runs[2]


@pytest.mark.parametrize("cell", CELLS)
@pytest.mark.parametrize(
    "name", ["dkgreedy", "dmqb", "dkgreedy[half]", "dmqb[global]"]
)
class TestDecentralBitIdentity:
    def test_decentral_engine(self, name, cell):
        # The stealing loop draws victims from the caller's rng; the
        # draws (and so the whole schedule) must not depend on whether
        # anyone is watching.  Disabled telemetry must also record
        # nothing at all — zero cost means zero stored state.
        from repro.decentral import simulate_decentralized

        job, system = _instance(cell)
        runs = []
        for telemetry in (None, NULL_TELEMETRY, Telemetry(events=EventStream())):
            res = simulate_decentralized(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(1), telemetry=telemetry,
            )
            runs.append(_fingerprint(res))
        assert runs[0] == runs[1] == runs[2]
        assert not NULL_TELEMETRY.counters
        assert not NULL_TELEMETRY.timers
        assert not NULL_TELEMETRY.histograms


@pytest.mark.parametrize("cell", CELLS)
@pytest.mark.parametrize(
    "name",
    ["emqb[w=0.5]", "emqb[w=1]", "kgreedy-consolidate[r=0.5]",
     "kgreedy-consolidate[r=0.25]"],
)
class TestEnergyBitIdentity:
    def test_energy_variants(self, name, cell):
        # The energy variants thread extra state (weights, running
        # counts) through the scalar engine; none of it may depend on
        # whether anyone is watching, and disabled telemetry must
        # record nothing at all.
        job, system = _instance(cell)
        runs = []
        for telemetry in (None, NULL_TELEMETRY, Telemetry(events=EventStream())):
            res = simulate(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(1), telemetry=telemetry,
            )
            runs.append(_fingerprint(res))
        assert runs[0] == runs[1] == runs[2]
        assert not NULL_TELEMETRY.counters
        assert not NULL_TELEMETRY.timers
        assert not NULL_TELEMETRY.histograms


class TestStreamBitIdentity:
    def test_stream_engine(self):
        from repro.multijob.arrival import poisson_stream
        from repro.multijob.engine import simulate_stream
        from repro.multijob.schedulers import GlobalKGreedy, GlobalMQB

        _, resources = _instance("small-layered-ep", seed=5)
        stream = poisson_stream(
            WORKLOAD_CELLS["small-layered-ep"], 6, 5.0,
            np.random.default_rng(5),
        )
        for policy in (GlobalMQB, GlobalKGreedy):
            runs = []
            for telemetry in (
                None, NULL_TELEMETRY, Telemetry(events=EventStream())
            ):
                res = simulate_stream(
                    stream, resources, policy(), telemetry=telemetry
                )
                runs.append(res.completion_times)
            assert runs[0] == runs[1] == runs[2]


class TestWallClock:
    def test_disabled_telemetry_overhead_is_bounded(self):
        job, system = _instance("small-layered-ep")

        def run(telemetry):
            t0 = time.perf_counter()
            simulate(
                job, system, make_scheduler("mqb"),
                rng=np.random.default_rng(1), telemetry=telemetry,
            )
            return time.perf_counter() - t0

        # Warm caches, then take the min over several repeats for both
        # paths; the disabled path must stay within a generous factor
        # (it is one attribute check away from the bare path, but CI
        # boxes are noisy).
        run(None)
        bare = min(run(None) for _ in range(5))
        disabled = min(run(NULL_TELEMETRY) for _ in range(5))
        assert disabled <= bare * 3 + 0.01
