"""Unit tests for resource configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ResourceError
from repro.system.resources import (
    MEDIUM_RANGE,
    SMALL_RANGE,
    ResourceConfig,
    medium_system,
    sample_medium_system,
    sample_small_system,
    skewed,
    small_system,
)


class TestResourceConfig:
    def test_basic_accessors(self):
        cfg = ResourceConfig((2, 3, 1))
        assert cfg.num_types == 3
        assert cfg.total == 6
        assert cfg.p_max == 3
        assert cfg[1] == 3
        assert len(cfg) == 3
        assert list(cfg) == [2, 3, 1]

    def test_as_array(self):
        arr = ResourceConfig((2, 3)).as_array()
        assert arr.dtype == np.int64
        assert list(arr) == [2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ResourceError):
            ResourceConfig(())

    @pytest.mark.parametrize("bad", [(0,), (-1, 2), (1.5, 2)])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(ResourceError):
            ResourceConfig(bad)

    def test_numpy_ints_accepted(self):
        cfg = ResourceConfig(tuple(np.array([2, 3], dtype=np.int64)))
        assert cfg.counts == (2, 3)

    def test_with_counts(self):
        cfg = ResourceConfig((1, 1)).with_counts([4, 5])
        assert cfg.counts == (4, 5)

    def test_frozen(self):
        cfg = ResourceConfig((1, 2))
        with pytest.raises(AttributeError):
            cfg.counts = (3,)


class TestFactories:
    def test_small_system(self):
        assert small_system(4, per_type=3).counts == (3, 3, 3, 3)

    def test_small_range_enforced(self):
        with pytest.raises(ResourceError):
            small_system(2, per_type=9)

    def test_medium_system(self):
        assert medium_system(2, per_type=15).counts == (15, 15)

    def test_medium_range_enforced(self):
        with pytest.raises(ResourceError):
            medium_system(2, per_type=5)

    def test_sample_small_uniform_shares_one_count(self, rng):
        cfg = sample_small_system(4, rng)
        assert len(set(cfg.counts)) == 1
        lo, hi = SMALL_RANGE
        assert lo <= cfg.counts[0] <= hi

    def test_sample_small_independent(self, rng):
        counts = {sample_small_system(6, rng, uniform=False).counts for _ in range(20)}
        # With 6 independent draws, some config has unequal counts.
        assert any(len(set(c)) > 1 for c in counts)

    def test_sample_medium_in_range(self, rng):
        lo, hi = MEDIUM_RANGE
        for _ in range(10):
            cfg = sample_medium_system(3, rng)
            assert all(lo <= c <= hi for c in cfg.counts)


class TestSkew:
    def test_divides_first_type_by_factor(self):
        cfg = skewed(ResourceConfig((15, 15, 15)), skew_type=0, factor=5)
        assert cfg.counts == (3, 15, 15)

    def test_rounds_up_and_floors_at_one(self):
        assert skewed(ResourceConfig((4, 8)), factor=5).counts == (1, 8)
        assert skewed(ResourceConfig((1, 8)), factor=5).counts == (1, 8)

    def test_other_type(self):
        cfg = skewed(ResourceConfig((10, 10)), skew_type=1, factor=2)
        assert cfg.counts == (10, 5)

    def test_bad_type(self):
        with pytest.raises(ResourceError):
            skewed(ResourceConfig((2, 2)), skew_type=5)

    def test_bad_factor(self):
        with pytest.raises(ResourceError):
            skewed(ResourceConfig((2, 2)), factor=0)
