"""Graceful numpy fallback when the native kernel cannot be obtained.

The fallback contract: ``REPRO_NATIVE=0`` never attempts a load or
build; a requested-but-unbuildable kernel (no extension, no compiler,
no cached shared object) runs the pure-numpy path with a **single**
process-wide warning, counts ``native.fallbacks`` on attached
telemetry, and produces bit-identical results.  These tests simulate
the no-compiler host by monkeypatching the loader's strategies, so
they run (and matter) even on hosts where the real kernel builds fine.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import ResourceConfig, make_scheduler, simulate
from repro import native
from repro.obs.telemetry import Telemetry
from repro.sim.batch import simulate_batch
from tests.conftest import make_random_job


@pytest.fixture
def fresh_loader_state():
    """Reset the memoized loader around a test, restoring it after."""
    token = native._reset_for_tests()
    yield
    native._restore(token)


@pytest.fixture
def broken_build(fresh_loader_state, monkeypatch, tmp_path):
    """A host with no prebuilt extension, no compiler, no cached .so."""
    monkeypatch.setattr(native, "_try_extension", lambda: None)
    monkeypatch.setattr(native, "_find_compiler", lambda: None)
    monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path / "empty-cache"))


class TestDisabled:
    def test_no_load_or_build_attempted(self, fresh_loader_state, monkeypatch, rng):
        monkeypatch.setenv("REPRO_NATIVE", "0")

        def boom():  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("REPRO_NATIVE=0 must not attempt a load")

        monkeypatch.setattr(native, "_try_extension", boom)
        monkeypatch.setattr(native, "_build_shared_object", boom)
        assert native.load_kernel() is None
        job = make_random_job(rng, n=40, k=3)
        tel = Telemetry()
        res = simulate(job, ResourceConfig((2, 2, 2)), make_scheduler("mqb"),
                       telemetry=tel)
        assert res.makespan > 0
        snap = tel.snapshot()
        assert "native.calls" not in snap.counters
        assert "native.fallbacks" not in snap.counters


class TestForcedFallback:
    def test_single_warning_fallbacks_counted_bit_identical(
        self, broken_build, monkeypatch, rng
    ):
        job = make_random_job(rng, n=60, k=3)
        system = ResourceConfig((2, 3, 2))

        monkeypatch.setenv("REPRO_NATIVE", "0")
        ref = simulate(job, system, make_scheduler("mqb"), record_trace=True)

        monkeypatch.setenv("REPRO_NATIVE", "1")
        tel = Telemetry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = simulate(job, system, make_scheduler("mqb"),
                             record_trace=True, telemetry=tel)
            second = simulate(job, system, make_scheduler("mqb"),
                              record_trace=True, telemetry=tel)
        ours = [w for w in caught if "native MQB kernel" in str(w.message)]
        assert len(ours) == 1  # warn once per process, not per run
        assert issubclass(ours[0].category, RuntimeWarning)

        snap = tel.snapshot()
        assert snap.counters.get("native.fallbacks") == 2  # one per run
        assert "native.calls" not in snap.counters

        for res in (first, second):
            assert res.makespan == ref.makespan
            assert res.decisions == ref.decisions
            assert res.trace.segments == ref.trace.segments

    def test_batch_fallback_counted_bit_identical(
        self, broken_build, monkeypatch, rng
    ):
        system = ResourceConfig((2, 2, 2))
        instances = [(make_random_job(rng, n=50, k=3), system) for _ in range(4)]

        monkeypatch.setenv("REPRO_NATIVE", "0")
        ref = simulate_batch(instances, "mqb", record_trace=True)

        monkeypatch.setenv("REPRO_NATIVE", "1")
        tel = Telemetry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            nat = simulate_batch(instances, "mqb", record_trace=True,
                                 telemetry=tel)
        assert any("native MQB kernel" in str(w.message) for w in caught)
        snap = tel.snapshot()
        assert snap.counters.get("native.fallbacks", 0) >= 1
        assert "native.calls" not in snap.counters
        for r, n_ in zip(ref, nat):
            assert n_.makespan == r.makespan
            assert n_.trace.segments == r.trace.segments

    def test_load_error_surfaced_in_status(self, broken_build, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "1")
        assert native.load_kernel() is None
        status = native.native_status()
        assert status["attempted"] and not status["loaded"]
        assert "no C compiler" in status["error"]
