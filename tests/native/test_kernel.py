"""Native MQB kernel: parity with numpy, dispatch gating, telemetry.

The heavyweight bit-identity matrix lives in
``scripts/check_native_identity.py`` (CI runs it after an explicit
compile step); these tests cover the unit-level contract — direct
kernel calls against a numpy replica of ``MQB._pick_best`` + ``_pop``,
the subclass/dimension dispatch gates, and the ``native.*`` telemetry
counters — and skip cleanly on hosts where no kernel can be built.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ResourceConfig, make_scheduler, simulate
from repro import native
from repro.obs.telemetry import Telemetry
from repro.schedulers.mqb import MQB
from repro.sim.batch import simulate_batch
from tests.conftest import make_random_job


@pytest.fixture
def kernel(monkeypatch):
    """The loaded kernel, or a skip on hosts without one."""
    monkeypatch.setenv("REPRO_NATIVE", "auto")
    k = native.load_kernel()
    if k is None:
        pytest.skip(f"native kernel unavailable: {native.native_status()['error']}")
    return k


def _numpy_pick(dpool, wpool, spool, l, extra, parr, alpha, mode):
    """Replica of MQB._pick_best's numpy formulation (returns the slot)."""
    r = dpool + (l + extra)
    r[:, alpha] -= wpool
    r = r / parr
    neg_seq = -spool
    if mode == "lex":
        rs = np.sort(r, axis=1)
        keys = (
            neg_seq,
            *(rs[:, j] for j in range(rs.shape[1] - 1, 0, -1)),
            rs[:, 0],
        )
    elif mode == "min":
        keys = (neg_seq, r.min(axis=1))
    else:
        keys = (neg_seq, r.sum(axis=1))
    return int(np.lexsort(keys)[-1])


class TestKernelParity:
    @pytest.mark.parametrize("mode", ["lex", "min", "sum"])
    def test_pick_pop_matches_numpy_fuzz(self, kernel, mode, rng):
        for trial in range(120):
            K = int(rng.integers(2, 8 if mode == "sum" else 13))
            m = int(rng.integers(1, 50))
            carry = bool(trial % 2)
            dpool = np.round(rng.uniform(0, 50, size=(m, K)), 3)
            wpool = np.round(rng.uniform(1, 9, size=m), 3)
            spool = rng.permutation(m).astype(np.int64)
            l = np.round(rng.uniform(0, 30, size=K), 3)
            extra = np.round(rng.uniform(0, 5, size=K), 3)
            parr = rng.integers(1, 9, size=K).astype(np.float64)
            alpha = int(rng.integers(0, K))
            if m > 3:  # exercise the FIFO-seq tiebreak
                dpool[1] = dpool[0]
                wpool[1] = wpool[0]

            ref = _numpy_pick(dpool, wpool, spool, l, extra, parr, alpha, mode)
            d2, w2, s2 = dpool.copy(), wpool.copy(), spool.copy()
            l2, e2 = l.copy(), extra.copy()
            slot = kernel.pick_pop(
                d2.ctypes.data, w2.ctypes.data, s2.ctypes.data, m, K, alpha,
                l2.ctypes.data, e2.ctypes.data, parr.ctypes.data,
                native.MODE_CODES[mode], int(carry),
            )
            assert slot == ref
            # Committed state: l, extra, and the swap-removed pools.
            lref = l.copy()
            lref[alpha] -= wpool[ref]
            assert np.array_equal(l2, lref)
            eref = extra + (dpool[ref] if carry else 0.0)
            assert np.array_equal(e2, eref)
            last = m - 1
            dref, wref, sref = dpool.copy(), wpool.copy(), spool.copy()
            if ref != last:
                dref[ref], wref[ref], sref[ref] = dref[last], wref[last], sref[last]
            assert np.array_equal(d2[:last], dref[:last])
            assert np.array_equal(w2[:last], wref[:last])
            assert np.array_equal(s2[:last], sref[:last])

    @pytest.mark.parametrize(
        "name", ["mqb", "mqb[min]", "mqb[sum]", "mqb[nocarry]"]
    )
    def test_simulate_parity_random_jobs(self, kernel, name, rng, monkeypatch):
        system = ResourceConfig((2, 3, 2))
        for i in range(4):
            job = make_random_job(rng, n=60, k=3)
            monkeypatch.setenv("REPRO_NATIVE", "0")
            ref = simulate(job, system, make_scheduler(name), record_trace=True)
            monkeypatch.setenv("REPRO_NATIVE", "1")
            nat = simulate(job, system, make_scheduler(name), record_trace=True)
            assert nat.makespan == ref.makespan
            assert nat.decisions == ref.decisions
            assert nat.trace.segments == ref.trace.segments

    @pytest.mark.parametrize("name", ["mqb", "mqb[sum]"])
    def test_batch_parity_random_jobs(self, kernel, name, rng, monkeypatch):
        system = ResourceConfig((2, 2, 2))
        instances = [(make_random_job(rng, n=50, k=3), system) for _ in range(5)]
        monkeypatch.setenv("REPRO_NATIVE", "0")
        ref = simulate_batch(instances, name, record_trace=True)
        monkeypatch.setenv("REPRO_NATIVE", "1")
        nat = simulate_batch(instances, name, record_trace=True)
        for r, n_ in zip(ref, nat):
            assert n_.makespan == r.makespan
            assert n_.decisions == r.decisions
            assert n_.trace.segments == r.trace.segments


class TestDispatchGates:
    def test_mqb_routes_native(self, kernel, rng, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "1")
        job = make_random_job(rng, n=30, k=3)
        sch = make_scheduler("mqb")
        sch.prepare(job, ResourceConfig((2, 2, 2)))
        assert sch._kpick is not None

    def test_disabled_env_routes_numpy(self, kernel, rng, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        job = make_random_job(rng, n=30, k=3)
        sch = make_scheduler("mqb")
        sch.prepare(job, ResourceConfig((2, 2, 2)))
        assert sch._kpick is None

    def test_emqb_override_not_routed(self, kernel, rng, monkeypatch):
        # EMQB overrides _pick_best (energy-weighted scoring); routing
        # it through the base kernel would silently drop the override.
        monkeypatch.setenv("REPRO_NATIVE", "1")
        job = make_random_job(rng, n=30, k=3)
        sch = make_scheduler("emqb[w=0.5]")
        sch.prepare(job, ResourceConfig((2, 2, 2)))
        assert sch._kpick is None

    def test_pick_best_subclass_not_routed(self, kernel, rng, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "1")

        class Tweaked(MQB):
            def _pick_best(self, alpha, extra):
                return super()._pick_best(alpha, extra)

        job = make_random_job(rng, n=30, k=3)
        sch = Tweaked()
        sch.prepare(job, ResourceConfig((2, 2, 2)))
        assert sch._kpick is None

    def test_sum_mode_gated_above_pairwise_k(self, kernel, rng, monkeypatch):
        # numpy's row sums stop being plain sequential loops at K >= 8,
        # so native sum-mode dispatch must refuse there (lex is fine).
        assert native.supported("sum", 7)
        assert not native.supported("sum", 8)
        assert native.supported("lex", 8)
        monkeypatch.setenv("REPRO_NATIVE", "1")
        job = make_random_job(rng, n=40, k=8)
        system = ResourceConfig((2,) * 8)
        sum_sch = make_scheduler("mqb[sum]")
        sum_sch.prepare(job, system)
        assert sum_sch._kpick is None
        lex_sch = make_scheduler("mqb")
        lex_sch.prepare(job, system)
        assert lex_sch._kpick is not None


class TestTelemetry:
    def test_scalar_native_calls_counted(self, kernel, rng, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "1")
        job = make_random_job(rng, n=60, k=3)
        tel = Telemetry()
        simulate(job, ResourceConfig((2, 2, 2)), make_scheduler("mqb"),
                 telemetry=tel)
        snap = tel.snapshot()
        assert snap.counters.get("native.calls", 0) > 0
        assert "native.fallbacks" not in snap.counters

    def test_batch_native_calls_counted(self, kernel, rng, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "1")
        system = ResourceConfig((2, 2, 2))
        instances = [(make_random_job(rng, n=50, k=3), system) for _ in range(4)]
        tel = Telemetry()
        simulate_batch(instances, "mqb", telemetry=tel)
        snap = tel.snapshot()
        assert snap.counters.get("native.calls", 0) > 0

    def test_profile_line_rendered(self):
        from repro.obs.profile import render_native_line

        tel = Telemetry()
        tel.inc("native.calls", 123)
        line = render_native_line(tel.snapshot())
        assert line == "native kernel: 123 picks in C"
        tel.inc("native.fallbacks", 2)
        line = render_native_line(tel.snapshot())
        assert "2 numpy fallbacks" in line
        assert render_native_line(Telemetry().snapshot()) is None
