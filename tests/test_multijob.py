"""Unit tests for the multi-job stream extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig
from repro.errors import ConfigurationError, SchedulingError
from repro.multijob import (
    GlobalKGreedy,
    GlobalMQB,
    JobFCFS,
    JobStream,
    SmallestRemainingFirst,
    poisson_stream,
    simulate_stream,
)
from repro.workloads.params import EPParams, WorkloadSpec

POLICIES = [GlobalKGreedy, JobFCFS, SmallestRemainingFirst, GlobalMQB]


def tiny_job(work=(2.0, 3.0), types=(0, 1)):
    return KDag(types=list(types), work=list(work), num_types=2)


def chain_job(works, jtype=0):
    n = len(works)
    return KDag(
        types=[jtype] * n, work=list(works),
        edges=[(i, i + 1) for i in range(n - 1)], num_types=2,
    )


class TestJobStream:
    def test_valid(self):
        s = JobStream((tiny_job(), tiny_job()), (0.0, 5.0))
        assert len(s) == 2
        assert s.num_types == 2
        assert s.total_work() == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            JobStream((), ())

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            JobStream((tiny_job(),), (0.0, 1.0))

    def test_decreasing_arrivals_rejected(self):
        with pytest.raises(ConfigurationError):
            JobStream((tiny_job(), tiny_job()), (5.0, 1.0))

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            JobStream((tiny_job(),), (-1.0,))

    def test_k_mismatch_rejected(self):
        other = KDag(types=[0], work=[1.0], num_types=3)
        with pytest.raises(ConfigurationError, match="share K"):
            JobStream((tiny_job(), other), (0.0, 0.0))


class TestPoissonStream:
    def test_first_arrival_zero(self, rng):
        spec = WorkloadSpec("ep", "layered", "small",
                            params=EPParams(branches_range=(2, 3),
                                            chain_length_range=(4, 8)))
        s = poisson_stream(spec, 5, 10.0, rng)
        assert s.arrivals[0] == 0.0
        assert len(s) == 5

    def test_zero_interarrival(self, rng):
        spec = WorkloadSpec("ep", "layered", "small",
                            params=EPParams(branches_range=(2, 2),
                                            chain_length_range=(4, 4)))
        s = poisson_stream(spec, 3, 0.0, rng)
        assert all(t == 0.0 for t in s.arrivals)

    def test_invalid_args(self, rng):
        spec = WorkloadSpec("ep", "layered", "small")
        with pytest.raises(ConfigurationError):
            poisson_stream(spec, 0, 1.0, rng)
        with pytest.raises(ConfigurationError):
            poisson_stream(spec, 2, -1.0, rng)


class TestEngineBasics:
    @pytest.mark.parametrize("cls", POLICIES)
    def test_single_job_stream_matches_job_structure(self, cls):
        job = chain_job([1.0, 2.0, 3.0])
        s = JobStream((job,), (0.0,))
        r = simulate_stream(s, ResourceConfig((1, 1)), cls())
        assert r.completion_times == (6.0,)
        assert r.mean_flow_time == 6.0
        assert r.makespan == 6.0

    @pytest.mark.parametrize("cls", POLICIES)
    def test_arrival_delays_start(self, cls):
        job = chain_job([2.0])
        s = JobStream((job, job), (0.0, 10.0))
        r = simulate_stream(s, ResourceConfig((1, 1)), cls())
        assert r.completion_times[0] == 2.0
        assert r.completion_times[1] == 12.0
        assert list(r.flow_times) == [2.0, 2.0]

    @pytest.mark.parametrize("cls", POLICIES)
    def test_contention_serializes(self, cls):
        job = chain_job([4.0])
        s = JobStream((job, job), (0.0, 0.0))
        r = simulate_stream(s, ResourceConfig((1, 1)), cls())
        assert r.makespan == 8.0

    def test_work_conservation_across_policies(self, rng):
        """All policies finish the stream; makespan bounded by serial."""
        spec = WorkloadSpec("ep", "layered", "small",
                            params=EPParams(branches_range=(2, 4),
                                            chain_length_range=(4, 8)))
        stream = poisson_stream(spec, 4, 5.0, np.random.default_rng(3))
        system = ResourceConfig((2, 2, 2, 2))
        serial = stream.arrivals[-1] + stream.total_work()
        for cls in POLICIES:
            r = simulate_stream(stream, system, cls())
            assert r.makespan <= serial + 1e-9
            assert np.all(r.flow_times > 0)


class TestPolicyBehaviour:
    def test_fcfs_finishes_first_job_first(self):
        # Two identical single-type jobs at t=0; FCFS runs job 0's
        # tasks strictly first.
        job = KDag(types=[0, 0], work=[2.0, 2.0], num_types=2)
        s = JobStream((job, job), (0.0, 0.0))
        r = simulate_stream(s, ResourceConfig((1, 1)), JobFCFS())
        assert r.completion_times[0] < r.completion_times[1]
        assert r.completion_times[0] == 4.0

    def test_srpt_prefers_short_job(self):
        long_job = KDag(types=[0] * 6, work=[3.0] * 6, num_types=2)
        short_job = KDag(types=[0], work=[1.0], num_types=2)
        s = JobStream((long_job, short_job), (0.0, 0.0))
        r = simulate_stream(s, ResourceConfig((1, 1)), SmallestRemainingFirst())
        assert r.completion_times[1] == 1.0  # short job first

    def test_fcfs_vs_srpt_flow_time(self):
        """SRPT's mean flow time beats FCFS when a short job queues
        behind a long one."""
        long_job = KDag(types=[0] * 8, work=[4.0] * 8, num_types=2)
        short_job = KDag(types=[0], work=[1.0], num_types=2)
        s = JobStream((long_job, short_job), (0.0, 0.0))
        system = ResourceConfig((1, 1))
        fcfs = simulate_stream(s, system, JobFCFS())
        srpt = simulate_stream(s, system, SmallestRemainingFirst())
        assert srpt.mean_flow_time < fcfs.mean_flow_time

    def test_global_mqb_balances_types(self, rng):
        spec = WorkloadSpec("ep", "layered", "small",
                            params=EPParams(branches_range=(3, 5),
                                            chain_length_range=(8, 12)))
        stream = poisson_stream(spec, 3, 2.0, np.random.default_rng(5))
        system = ResourceConfig((2, 2, 2, 2))
        r = simulate_stream(stream, system, GlobalMQB())
        kg = simulate_stream(stream, system, GlobalKGreedy())
        # MQB's stream makespan is competitive with job-blind FIFO.
        assert r.makespan <= 1.3 * kg.makespan

    def test_select_type_mismatch_detected(self):
        class Liar(GlobalKGreedy):
            name = "liar"

            def select(self, alpha, n_slots, time):
                picked = super().select(alpha, n_slots, time)
                # Claim the pick came from another pool.
                return picked

            def pending(self, alpha):
                # Report pending on the wrong type to trigger a bad pull.
                return super().pending(1 - alpha)

        job = KDag(types=[0], work=[1.0], num_types=2)
        s = JobStream((job,), (0.0,))
        with pytest.raises(SchedulingError):
            simulate_stream(s, ResourceConfig((1, 1)), Liar())
