"""Property-based tests for the K-DAG core (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import KDag
from repro.core.descendants import (
    descendant_values,
    one_step_descendant_values,
    remaining_span,
    untyped_descendant_values,
)
from repro.core.properties import span, total_work, type_work


@st.composite
def kdags(draw, max_tasks: int = 30, max_types: int = 4):
    """Random K-DAGs: edges only go id-upward, so always acyclic."""
    n = draw(st.integers(1, max_tasks))
    k = draw(st.integers(1, max_types))
    types = draw(
        st.lists(st.integers(0, k - 1), min_size=n, max_size=n)
    )
    work = draw(
        st.lists(
            st.floats(0.25, 16.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=60)) if possible else []
    return KDag(types=types, work=work, edges=edges, num_types=k)


@given(kdags())
@settings(max_examples=60, deadline=None)
def test_type_work_partitions_total(job):
    np.testing.assert_allclose(type_work(job).sum(), total_work(job), rtol=1e-12)
    assert np.all(type_work(job) >= 0.0)


@given(kdags())
@settings(max_examples=60, deadline=None)
def test_span_bounds(job):
    s = span(job)
    assert s <= total_work(job) + 1e-9
    assert s >= float(job.work.max()) - 1e-9


@given(kdags())
@settings(max_examples=60, deadline=None)
def test_topological_order_is_permutation_respecting_edges(job):
    topo = job.topological_order
    assert sorted(topo.tolist()) == list(range(job.n_tasks))
    pos = np.empty(job.n_tasks, dtype=int)
    pos[topo] = np.arange(job.n_tasks)
    for u, v in job.edges:
        assert pos[u] < pos[v]


@given(kdags())
@settings(max_examples=60, deadline=None)
def test_descendant_values_nonnegative_and_consistent(job):
    typed = descendant_values(job)
    assert np.all(typed >= -1e-12)
    np.testing.assert_allclose(
        typed.sum(axis=1), untyped_descendant_values(job), rtol=1e-9, atol=1e-9
    )
    one = one_step_descendant_values(job)
    assert np.all(one <= typed + 1e-9)


@given(kdags())
@settings(max_examples=60, deadline=None)
def test_descendant_values_bounded_by_reachable_work(job):
    """d_alpha(v) cannot exceed the alpha-work actually reachable from v."""
    typed = descendant_values(job)
    for v in range(job.n_tasks):
        mask = job.subgraph_reachable_from([v])
        mask[v] = False
        for alpha in range(job.num_types):
            reachable = float(
                job.work[(job.types == alpha) & mask].sum()
            )
            assert typed[v, alpha] <= reachable + 1e-9


@given(kdags())
@settings(max_examples=60, deadline=None)
def test_remaining_span_monotone(job):
    rs = remaining_span(job)
    for u, v in job.edges:
        assert rs[u] >= job.work[u] + rs[v] - 1e-9
    # Max remaining span over sources equals the span.
    sources = job.sources()
    assert float(rs[sources].max()) == np.max(rs)
