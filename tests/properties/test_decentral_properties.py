"""Property-based tests for the decentralized work-stealing engine.

Same invariant set as ``test_schedule_invariants.py``, under every
steal policy shape x decentralized scheduler on random K-DAGs:

1. **Legality** — every schedule passes ``validate_schedule``.
2. **Bounds** — makespan >= L(J) always; in the degenerate shared-pool
   limit the engine is work-conserving per type, so the greedy upper
   bound holds there too.
3. **Determinism** — same seed reproduces the makespan, the trace
   *and* the steal event sequence (victim draws included).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import KDag, ResourceConfig, make_scheduler, validate_schedule
from repro.core.properties import span, type_work
from repro.decentral import simulate_decentralized
from repro.obs.events import STEAL, EventStream
from repro.obs.telemetry import Telemetry

DECENTRAL_NAMES = (
    "dkgreedy",
    "dkgreedy[half]",
    "dkgreedy[global]",
    "dkgreedy[cost=0.5]",
    "dmqb",
    "dmqb[half]",
    "dmqb[global]",
    "dmqb[half,cost=1]",
)


@st.composite
def jobs_and_systems(draw, max_tasks: int = 24):
    n = draw(st.integers(1, max_tasks))
    k = draw(st.integers(1, 3))
    types = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    work = draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), unique=True, max_size=40))
        if possible
        else []
    )
    procs = tuple(draw(st.integers(1, 4)) for _ in range(k))
    job = KDag(types=types, work=[float(w) for w in work], edges=edges, num_types=k)
    return job, ResourceConfig(procs)


def greedy_upper_bound(job, system) -> float:
    return float((type_work(job) / system.as_array()).sum() + span(job))


@pytest.mark.parametrize("name", DECENTRAL_NAMES)
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_decentral_schedule_invariants(name, data):
    job, system = data.draw(jobs_and_systems())
    res = simulate_decentralized(
        job, system, make_scheduler(name),
        rng=np.random.default_rng(0), record_trace=True,
    )
    validate_schedule(job, system, res.trace, res.makespan)
    assert res.completion_time_ratio() >= 1.0 - 1e-9
    if make_scheduler(name).steal_policy.is_degenerate:
        # Only the shared-pool limit is strictly work-conserving (a
        # random-victim miss can idle a processor past a decision
        # instant), so the greedy bound is asserted only there.
        assert res.makespan <= greedy_upper_bound(job, system) + 1e-9


@pytest.mark.parametrize("name", ["dkgreedy", "dmqb[half]", "dkgreedy[cost=0.5]"])
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_decentral_determinism_includes_steal_events(name, data):
    job, system = data.draw(jobs_and_systems())

    def run():
        events = EventStream()
        res = simulate_decentralized(
            job, system, make_scheduler(name),
            rng=np.random.default_rng(7), record_trace=True,
            telemetry=Telemetry(events=events),
        )
        steals = [
            (e.ts, e.data["alpha"], e.data["thief"], e.data["victim"],
             e.data["n"], e.data["ok"])
            for e in events.of_kind(STEAL)
        ]
        return res.makespan, res.trace.segments, steals

    assert run() == run()
