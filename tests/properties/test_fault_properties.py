"""Property-based tests: fault runs stay legal under random failures.

For random jobs, systems and exponential failure timelines, every
scheduler must produce a trace that passes the fault-run legality
checker under both recovery policies, and the fault accounting must be
internally consistent (wasted work equals the killed durations, the
makespan never beats the fault-free lower bound).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import make_scheduler
from repro.faults.engine import simulate_with_faults
from repro.faults.metrics import wasted_work
from repro.faults.models import ExponentialFaults
from repro.sim.engine import simulate

from tests.properties.test_schedule_invariants import jobs_and_systems

SCHEDULERS = ["kgreedy", "lspan", "dtype", "maxdp", "shiftbt", "mqb"]


@pytest.mark.parametrize("policy", ["restart", "checkpoint"])
@pytest.mark.parametrize("name", SCHEDULERS)
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_fault_runs_validate(name, policy, data):
    from repro.faults.validate import validate_fault_schedule

    job, system = data.draw(jobs_and_systems(max_tasks=16))
    fault_seed = data.draw(st.integers(0, 2**16))
    horizon = 4.0 * float(job.work.sum()) + 10.0
    timeline = ExponentialFaults(mtbf=6.0, mttr=1.5).sample(
        system, horizon, np.random.default_rng(fault_seed)
    )
    res = simulate_with_faults(
        job, system, make_scheduler(name), timeline,
        policy=policy, rng=np.random.default_rng(0), record_trace=True,
    )
    validate_fault_schedule(
        job, system, res.trace, timeline,
        makespan=res.makespan, policy=policy,
    )
    if policy == "restart":
        assert res.wasted_work == pytest.approx(wasted_work(res.trace))
    else:
        assert res.wasted_work == 0.0
    assert res.kills >= len(res.trace.killed_segments())


@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_faults_never_speed_up_the_run(data):
    job, system = data.draw(jobs_and_systems(max_tasks=16))
    fault_seed = data.draw(st.integers(0, 2**16))
    horizon = 4.0 * float(job.work.sum()) + 10.0
    timeline = ExponentialFaults(mtbf=8.0, mttr=1.0).sample(
        system, horizon, np.random.default_rng(fault_seed)
    )
    base = simulate(
        job, system, make_scheduler("kgreedy"), rng=np.random.default_rng(0)
    )
    faulty = simulate_with_faults(
        job, system, make_scheduler("kgreedy"), timeline,
        rng=np.random.default_rng(0),
    )
    # Failures can only delay a non-preemptive greedy run's *bound*:
    # the makespan still respects the fault-free lower bound.
    assert faulty.makespan >= base.lower_bound() - 1e-9
    if timeline.is_empty:
        assert faulty.makespan == base.makespan
