"""Property-based tests: every scheduler produces legal, bounded schedules.

These are the load-bearing invariants of the whole system:

1. **Legality** — precedence, type matching, processor exclusivity and
   work conservation (checked by ``validate_schedule``).
2. **Lower bound** — makespan >= L(J) = max(span, max_a T1a/Pa).
3. **Greedy upper bound** — for any work-conserving scheduler,
   makespan <= sum_a T1a/Pa + span (the structural bound behind
   KGreedy's (K+1)-competitiveness).
4. **Determinism** — same seed, same makespan.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ResourceConfig, make_scheduler, simulate, simulate_preemptive, validate_schedule
from repro.core.properties import span, type_work
from repro.schedulers.registry import available_schedulers
from repro import KDag

ALL_SCHEDULERS = available_schedulers()


@st.composite
def jobs_and_systems(draw, max_tasks: int = 24):
    n = draw(st.integers(1, max_tasks))
    k = draw(st.integers(1, 3))
    types = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    # Integer work keeps the preemptive quantum engine exact.
    work = draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), unique=True, max_size=40))
        if possible
        else []
    )
    procs = tuple(draw(st.integers(1, 3)) for _ in range(k))
    job = KDag(types=types, work=[float(w) for w in work], edges=edges, num_types=k)
    return job, ResourceConfig(procs)


def greedy_upper_bound(job, system, scheduler=None) -> float:
    # kgreedy-consolidate is deliberately not work-conserving: it caps
    # per-type concurrency at ceil(r * P_alpha).  It is still greedy on
    # the reduced machine with that many processors per type, so the
    # same structural bound holds with the capped counts.
    procs = system.as_array().astype(float)
    ratio = getattr(scheduler, "ratio", None)
    if ratio is not None:
        procs = np.minimum(procs, np.ceil(ratio * procs))
    return float((type_work(job) / procs).sum() + span(job))


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_nonpreemptive_schedule_invariants(name, data):
    job, system = data.draw(jobs_and_systems())
    scheduler = make_scheduler(name)
    res = simulate(
        job, system, scheduler,
        rng=np.random.default_rng(0), record_trace=True,
    )
    validate_schedule(job, system, res.trace, res.makespan)
    assert res.completion_time_ratio() >= 1.0 - 1e-9
    assert res.makespan <= greedy_upper_bound(job, system, scheduler) + 1e-9


@pytest.mark.parametrize("name", ["kgreedy", "lspan", "mqb", "mqb+all+noise"])
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_preemptive_schedule_invariants(name, data):
    job, system = data.draw(jobs_and_systems())
    res = simulate_preemptive(
        job, system, make_scheduler(name),
        rng=np.random.default_rng(0), record_trace=True,
    )
    validate_schedule(job, system, res.trace, res.makespan, preemptive=True)
    assert res.completion_time_ratio() >= 1.0 - 1e-9
    assert res.makespan <= greedy_upper_bound(job, system) + 1e-9


@pytest.mark.parametrize("name", ["mqb", "mqb+all+exp", "shiftbt"])
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_determinism_under_fixed_seed(name, data):
    job, system = data.draw(jobs_and_systems())
    a = simulate(job, system, make_scheduler(name), rng=np.random.default_rng(7))
    b = simulate(job, system, make_scheduler(name), rng=np.random.default_rng(7))
    assert a.makespan == b.makespan


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_preemptive_never_splits_more_than_quantum(data):
    job, system = data.draw(jobs_and_systems(max_tasks=12))
    res = simulate_preemptive(
        job, system, make_scheduler("lspan"),
        rng=np.random.default_rng(0), record_trace=True,
    )
    assert all(s.duration <= 1.0 + 1e-12 for s in res.trace)
