"""Property-based tests for the stream and flexible extensions."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import KDag, ResourceConfig
from repro.flexible import FlexDag, FlexGreedy, FlexMQB, flexible_lower_bound, simulate_flexible
from repro.multijob import (
    GlobalKGreedy,
    GlobalMQB,
    JobFCFS,
    JobStream,
    SmallestRemainingFirst,
    simulate_stream,
)

POLICIES = [GlobalKGreedy, JobFCFS, SmallestRemainingFirst, GlobalMQB]


@st.composite
def small_jobs(draw, k: int):
    n = draw(st.integers(1, 10))
    types = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    work = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), unique=True, max_size=12))
        if possible
        else []
    )
    return KDag(types=types, work=[float(w) for w in work], edges=edges,
                num_types=k)


@st.composite
def streams(draw):
    k = draw(st.integers(1, 3))
    n_jobs = draw(st.integers(1, 4))
    jobs = tuple(draw(small_jobs(k)) for _ in range(n_jobs))
    gaps = draw(
        st.lists(st.floats(0.0, 10.0, allow_nan=False),
                 min_size=n_jobs - 1, max_size=n_jobs - 1)
    )
    arrivals = (0.0, *np.cumsum(gaps).tolist()) if gaps else (0.0,)
    procs = tuple(draw(st.integers(1, 3)) for _ in range(k))
    return JobStream(jobs, arrivals), ResourceConfig(procs)


@given(streams(), st.sampled_from(range(len(POLICIES))))
@settings(max_examples=40, deadline=None)
def test_stream_policies_complete_and_bound(data, policy_idx):
    stream, system = data
    result = simulate_stream(stream, system, POLICIES[policy_idx]())
    # Every job finishes at or after its arrival + its own span.
    from repro.core.properties import span

    for jid, job in enumerate(stream.jobs):
        assert result.completion_times[jid] >= (
            stream.arrivals[jid] + span(job) - 1e-9
        )
    # Work conservation: makespan <= last arrival + total work.
    assert result.makespan <= stream.arrivals[-1] + stream.total_work() + 1e-9
    assert np.all(result.flow_times > 0)


@given(streams())
@settings(max_examples=25, deadline=None)
def test_fcfs_completes_jobs_in_arrival_order_when_same_shape(data):
    stream, system = data
    result = simulate_stream(stream, system, JobFCFS())
    # FCFS never finishes a later IDENTICAL job before an earlier one.
    for a in range(len(stream)):
        for b in range(a + 1, len(stream)):
            if stream.jobs[a] == stream.jobs[b]:
                assert (
                    result.completion_times[a]
                    <= result.completion_times[b] + 1e-9
                )


@st.composite
def flex_jobs(draw):
    n = draw(st.integers(1, 8))
    k = draw(st.integers(1, 3))
    rows = []
    for _ in range(n):
        row = [
            draw(st.sampled_from([1.0, 2.0, 4.0, float("inf")]))
            for _ in range(k)
        ]
        if all(x == float("inf") for x in row):
            row[draw(st.integers(0, k - 1))] = 2.0
        rows.append(row)
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), unique=True, max_size=10))
        if possible
        else []
    )
    procs = tuple(draw(st.integers(1, 2)) for _ in range(k))
    return FlexDag(rows, edges), ResourceConfig(procs)


@given(flex_jobs(), st.sampled_from([FlexGreedy, FlexMQB]))
@settings(max_examples=40, deadline=None)
def test_flexible_schedules_complete_and_sound(data, policy):
    job, system = data
    result = simulate_flexible(job, system, policy(), record_trace=True)
    # Lower bound holds.
    assert result.makespan >= flexible_lower_bound(job, system.as_array()) - 1e-9
    # Every chosen type was permitted, and the realized schedule is legal.
    for v in range(job.n_tasks):
        alpha = int(result.type_choices[v])
        assert np.isfinite(job.work[v, alpha])
    from repro import validate_schedule

    realized = KDag(
        types=result.type_choices,
        work=[float(job.work[v, result.type_choices[v]]) for v in range(job.n_tasks)],
        edges=[tuple(e) for e in job.edges],
        num_types=job.num_types,
    )
    validate_schedule(realized, system, result.trace, result.makespan)
