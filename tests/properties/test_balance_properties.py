"""Property-based tests for the balance order and workload generators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.balance import balance_key, compare_balance
from repro.workloads.ep import generate_ep
from repro.workloads.ir import generate_ir
from repro.workloads.params import EPParams, IRParams, TreeParams
from repro.workloads.tree import generate_tree


queue_works = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=6
)


@given(queue_works, st.data())
@settings(max_examples=80, deadline=None)
def test_compare_balance_is_antisymmetric(works, data):
    k = len(works)
    procs = data.draw(st.lists(st.integers(1, 5), min_size=k, max_size=k))
    other = data.draw(
        st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=k, max_size=k)
    )
    a = balance_key(works, procs)
    b = balance_key(other, procs)
    assert compare_balance(a, b) == -compare_balance(b, a)


@given(queue_works, st.data())
@settings(max_examples=80, deadline=None)
def test_compare_balance_reflexive_and_permutation_invariant(works, data):
    k = len(works)
    procs = [1] * k
    perm = data.draw(st.permutations(list(range(k))))
    shuffled = [works[i] for i in perm]
    a = balance_key(works, procs)
    b = balance_key(shuffled, procs)
    assert compare_balance(a, b) == 0


@given(queue_works, st.data())
@settings(max_examples=60, deadline=None)
def test_transitivity_on_triples(works, data):
    k = len(works)
    procs = data.draw(st.lists(st.integers(1, 4), min_size=k, max_size=k))
    w2 = data.draw(st.lists(st.floats(0, 100, allow_nan=False), min_size=k, max_size=k))
    w3 = data.draw(st.lists(st.floats(0, 100, allow_nan=False), min_size=k, max_size=k))
    a, b, c = (balance_key(w, procs) for w in (works, w2, w3))
    if compare_balance(a, b) >= 0 and compare_balance(b, c) >= 0:
        assert compare_balance(a, c) >= 0


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_ep_generator_always_valid(k, seed):
    rng = np.random.default_rng(seed)
    params = EPParams(branches_range=(2, 5), chain_length_range=(4, 10))
    job = generate_ep(params, k, "layered", rng)
    assert job.num_types == k
    assert np.all(job.work >= 1)
    assert np.all(job.in_degrees() <= 1)


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_tree_generator_always_valid(k, seed):
    rng = np.random.default_rng(seed)
    params = TreeParams(
        fanout_range=(2, 4), fanout_prob_range=(0.2, 0.5),
        max_depth=6, max_nodes=200, forced_depth=1,
    )
    job = generate_tree(params, k, "layered", rng)
    assert job.sources().size == 1
    assert job.n_edges == job.n_tasks - 1
    assert job.n_tasks <= 200


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_ir_generator_always_valid(k, seed):
    rng = np.random.default_rng(seed)
    params = IRParams(
        iterations_range=(1, 3), maps_range=(3, 8),
        reduces_range=(2, 4), fanin_range=(1, 2),
    )
    job = generate_ir(params, k, "random", rng)
    assert job.num_types == k
    # Acyclic by construction (KDag would raise otherwise); every
    # reduce reachable: no isolated tasks outside the first map phase.
    later = np.flatnonzero(job.depth > 0)
    assert np.all(job.in_degrees()[later] >= 1)
