"""Unit tests for the Theorem-2 adversarial job family."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ResourceConfig, make_scheduler, simulate
from repro.core.properties import type_work
from repro.errors import ConfigurationError
from repro.workloads.adversarial import (
    adversarial_job,
    adversarial_optimal_makespan,
)


class TestConstruction:
    def test_task_counts_match_formula(self, rng):
        procs = (2, 3)
        m = 4
        job = adversarial_job(procs, m, rng)
        pk = procs[-1]
        expected = [p * pk * m for p in procs]
        counts = [int(job.tasks_of_type(a).size) for a in range(2)]
        assert counts == expected

    def test_unit_work(self, rng):
        job = adversarial_job((2, 2), 3, rng)
        assert np.all(job.work == 1.0)

    def test_active_tasks_feed_all_next_type(self, rng):
        procs = (2, 2)
        job = adversarial_job(procs, 3, rng)
        # Exactly P_0 = 2 type-0 tasks have out-edges, each to ALL
        # type-1 tasks.
        type0 = job.tasks_of_type(0)
        out = [job.n_children(int(v)) for v in type0]
        active = [o for o in out if o > 0]
        n_type1 = job.tasks_of_type(1).size
        assert len(active) == 2
        assert all(o == n_type1 for o in active)

    def test_chain_structure(self, rng):
        procs = (2, 2)
        m = 3
        job = adversarial_job(procs, m, rng)
        pk = procs[-1]
        chain_len = m * pk - 1
        last = job.tasks_of_type(1)
        # Chain tasks: in the last type, exactly chain_len - 1 edges
        # between type-1 tasks plus P_K active->chain-head edges.
        intra = [
            (u, v) for u, v in job.edges
            if job.types[u] == 1 and job.types[v] == 1
        ]
        assert len(intra) == (chain_len - 1) + pk

    def test_requires_last_type_maximal(self, rng):
        with pytest.raises(ConfigurationError, match="maximum"):
            adversarial_job((5, 2), 3, rng)

    def test_bad_m(self, rng):
        with pytest.raises(ConfigurationError):
            adversarial_job((2, 2), 0, rng)

    def test_k_equals_one(self, rng):
        job = adversarial_job((3,), 4, rng)
        assert job.num_types == 1
        assert job.n_tasks == 3 * 3 * 4


class TestOptimalMakespan:
    def test_formula(self):
        assert adversarial_optimal_makespan((2, 2, 3), 6) == 2 + 18
        assert adversarial_optimal_makespan((4,), 5) == 20

    def test_lower_bound_of_job_at_most_optimal(self, rng):
        procs = (2, 2, 2)
        m = 5
        job = adversarial_job(procs, m, rng)
        from repro.core.properties import lower_bound

        assert lower_bound(job, procs) <= adversarial_optimal_makespan(procs, m)


class TestOnlinePenalty:
    def test_kgreedy_exceeds_finite_m_bound(self, rng):
        """KGreedy's expected ratio matches Theorem 2's construction."""
        from repro.theory.bounds import randomized_online_lower_bound_finite_m

        procs = (2, 2)
        m = 8
        bound = randomized_online_lower_bound_finite_m(procs, m)
        ratios = []
        for i in range(30):
            job = adversarial_job(procs, m, np.random.default_rng(i))
            res = simulate(job, ResourceConfig(procs), make_scheduler("kgreedy"))
            ratios.append(res.makespan / adversarial_optimal_makespan(procs, m))
        assert float(np.mean(ratios)) >= bound - 0.1  # sampling slack

    def test_offline_mqb_beats_kgreedy_on_adversary(self, rng):
        procs = (2, 2)
        m = 8
        kg, mq = [], []
        for i in range(10):
            job = adversarial_job(procs, m, np.random.default_rng(100 + i))
            system = ResourceConfig(procs)
            kg.append(simulate(job, system, make_scheduler("kgreedy")).makespan)
            mq.append(
                simulate(
                    job, system, make_scheduler("mqb"),
                    rng=np.random.default_rng(i),
                ).makespan
            )
        assert np.mean(mq) < np.mean(kg)
