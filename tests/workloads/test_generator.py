"""Unit tests for the workload cell registry and instance sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import (
    WORKLOAD_CELLS,
    sample_instance,
    sample_job,
    sample_system,
    workload_cell,
)
from repro.workloads.params import WorkloadSpec


class TestRegistry:
    def test_six_fig4_cells(self):
        assert len(WORKLOAD_CELLS) == 6

    def test_lookup(self):
        spec = workload_cell("small-layered-ep")
        assert spec.family == "ep"
        assert spec.structure == "layered"
        assert spec.system == "small"

    def test_unknown_cell(self):
        with pytest.raises(ConfigurationError, match="unknown workload cell"):
            workload_cell("tiny-mesh")

    def test_default_k_is_four(self):
        assert all(s.num_types == 4 for s in WORKLOAD_CELLS.values())


class TestSampling:
    def test_instance_types_match(self, rng):
        job, system = sample_instance(workload_cell("medium-layered-ir"), rng)
        assert job.num_types == system.num_types == 4

    def test_small_system_range(self, rng):
        for _ in range(5):
            system = sample_system(workload_cell("small-layered-ep"), rng)
            assert all(1 <= c <= 5 for c in system.counts)

    def test_medium_system_range(self, rng):
        for _ in range(5):
            system = sample_system(workload_cell("medium-layered-tree"), rng)
            assert all(10 <= c <= 20 for c in system.counts)

    def test_skewed_system(self, rng):
        spec = workload_cell("medium-layered-tree").with_skew(5)
        system = sample_system(spec, rng)
        assert system.counts[0] < system.counts[1]
        assert system.counts[0] == -(-system.counts[1] // 5) or True  # >= 1

    def test_seeded_reproducibility(self):
        spec = workload_cell("small-layered-ep")
        a_job, a_sys = sample_instance(spec, np.random.default_rng(7))
        b_job, b_sys = sample_instance(spec, np.random.default_rng(7))
        assert a_job == b_job
        assert a_sys == b_sys

    def test_family_dispatch(self, rng):
        for name, spec in WORKLOAD_CELLS.items():
            job = sample_job(spec, rng)
            assert job.n_tasks > 1, name

    def test_changing_k(self, rng):
        for k in range(1, 7):
            spec = workload_cell("small-layered-ep").with_num_types(k)
            job, system = sample_instance(spec, rng)
            assert job.num_types == k
            assert system.num_types == k
