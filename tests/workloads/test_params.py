"""Unit tests for workload parameter dataclasses and WorkloadSpec."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.params import EPParams, IRParams, TreeParams, WorkloadSpec


class TestParamValidation:
    def test_ep_defaults_valid(self):
        EPParams()

    def test_ep_bad_range(self):
        with pytest.raises(ConfigurationError):
            EPParams(branches_range=(5, 2))
        with pytest.raises(ConfigurationError):
            EPParams(work_range=(0, 3))

    def test_tree_defaults_valid(self):
        TreeParams()

    def test_tree_bad_prob(self):
        with pytest.raises(ConfigurationError):
            TreeParams(fanout_prob_range=(0.5, 1.2))

    def test_tree_bad_depth(self):
        with pytest.raises(ConfigurationError):
            TreeParams(max_depth=0)
        with pytest.raises(ConfigurationError):
            TreeParams(forced_depth=99)

    def test_ir_defaults_valid(self):
        IRParams()

    def test_ir_bad_fanin(self):
        with pytest.raises(ConfigurationError):
            IRParams(fanin_range=(3, 1))


class TestWorkloadSpec:
    def test_label(self):
        spec = WorkloadSpec("ep", "layered", "small")
        assert spec.label == "small layered EP (K=4)"

    def test_label_with_skew(self):
        spec = WorkloadSpec("ir", "layered", "medium", skew_factor=5)
        assert "skewed" in spec.label

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec("mesh", "layered", "small")

    def test_unknown_structure(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec("ep", "sorted", "small")

    def test_unknown_system(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec("ep", "layered", "huge")

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec("ep", "layered", "small", num_types=0)

    def test_params_family_mismatch(self):
        with pytest.raises(ConfigurationError, match="takes"):
            WorkloadSpec("ep", "layered", "small", params=TreeParams())

    def test_effective_params_default(self):
        spec = WorkloadSpec("tree", "random", "medium")
        assert isinstance(spec.effective_params, TreeParams)

    def test_effective_params_explicit(self):
        p = EPParams(branches_range=(2, 3))
        spec = WorkloadSpec("ep", "layered", "small", params=p)
        assert spec.effective_params is p

    def test_with_num_types(self):
        spec = WorkloadSpec("ep", "layered", "small").with_num_types(6)
        assert spec.num_types == 6
        assert spec.family == "ep"

    def test_with_skew(self):
        spec = WorkloadSpec("ir", "layered", "medium").with_skew(5)
        assert spec.skew_factor == 5

    def test_frozen(self):
        spec = WorkloadSpec("ep", "layered", "small")
        with pytest.raises(AttributeError):
            spec.family = "tree"
