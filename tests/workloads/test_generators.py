"""Unit tests for the EP / tree / IR workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.properties import type_work
from repro.workloads.ep import generate_ep
from repro.workloads.ir import generate_ir
from repro.workloads.params import EPParams, IRParams, TreeParams
from repro.workloads.tree import generate_tree


class TestEP:
    def params(self, **kw):
        defaults = dict(
            branches_range=(3, 6), chain_length_range=(8, 12), work_range=(1, 4)
        )
        defaults.update(kw)
        return EPParams(**defaults)

    def test_structure_is_disjoint_chains(self, rng):
        job = generate_ep(self.params(), 4, "layered", rng)
        # Chains: every node has <= 1 parent and <= 1 child.
        assert np.all(job.in_degrees() <= 1)
        assert np.all(job.out_degrees() <= 1)
        # #components = #sources = #sinks.
        assert job.sources().size == job.sinks().size

    def test_branch_count_in_range(self, rng):
        for _ in range(5):
            job = generate_ep(self.params(), 4, "layered", rng)
            assert 3 <= job.sources().size <= 6

    def test_layered_types_are_sorted_blocks(self, rng):
        job = generate_ep(self.params(), 4, "layered", rng)
        # Follow each chain; types must be non-decreasing 0..K-1 blocks.
        for head in job.sources():
            v = int(head)
            seen = [int(job.types[v])]
            while job.n_children(v):
                v = int(job.children(v)[0])
                seen.append(int(job.types[v]))
            assert seen == sorted(seen)
            assert set(seen) == set(range(4))  # every type block present

    def test_layered_starts_at_type_zero(self, rng):
        job = generate_ep(self.params(), 3, "layered", rng)
        assert all(job.types[int(h)] == 0 for h in job.sources())

    def test_random_types_cover_all(self, rng):
        job = generate_ep(self.params(branches_range=(8, 8)), 4, "random", rng)
        assert set(np.unique(job.types)) == {0, 1, 2, 3}

    def test_work_in_range(self, rng):
        job = generate_ep(self.params(), 2, "layered", rng)
        assert job.work.min() >= 1 and job.work.max() <= 4

    def test_k1_degenerates_gracefully(self, rng):
        job = generate_ep(self.params(), 1, "layered", rng)
        assert job.num_types == 1
        assert np.all(job.types == 0)


class TestTree:
    def params(self, **kw):
        defaults = dict(
            fanout_range=(3, 3),
            fanout_prob_range=(0.3, 0.3),
            work_range=(1, 5),
            max_depth=6,
            max_nodes=500,
            forced_depth=1,
        )
        defaults.update(kw)
        return TreeParams(**defaults)

    def test_is_a_tree(self, rng):
        job = generate_tree(self.params(), 3, "random", rng)
        assert np.all(job.in_degrees() <= 1)
        assert job.sources().size == 1  # single root
        assert job.n_edges == job.n_tasks - 1

    def test_fanout_is_all_or_nothing(self, rng):
        job = generate_tree(self.params(), 3, "random", rng)
        out = job.out_degrees()
        assert set(np.unique(out)) <= {0, 3}

    def test_forced_depth_guarantees_size(self, rng):
        job = generate_tree(self.params(forced_depth=2), 2, "random", rng)
        # Root + 3 children + 9 grandchildren at minimum.
        assert job.n_tasks >= 13

    def test_max_depth_respected(self, rng):
        job = generate_tree(self.params(), 2, "random", rng)
        assert int(job.depth.max()) <= 6

    def test_max_nodes_respected(self, rng):
        p = self.params(fanout_prob_range=(1.0, 1.0), max_depth=10, max_nodes=100)
        job = generate_tree(p, 2, "random", rng)
        assert job.n_tasks <= 100

    def test_layered_levels_share_type(self, rng):
        job = generate_tree(self.params(forced_depth=3), 4, "layered", rng)
        for d in range(int(job.depth.max()) + 1):
            level_types = job.types[job.depth == d]
            assert len(set(level_types.tolist())) == 1

    def test_random_structure_varies_types_within_level(self, rng):
        p = self.params(forced_depth=3, fanout_range=(4, 4))
        job = generate_tree(p, 4, "random", rng)
        level1 = job.types[job.depth == 1]
        # 4 children at level 1: overwhelmingly unlikely to share a type.
        assert len(set(level1.tolist())) > 1


class TestIR:
    def params(self, **kw):
        defaults = dict(
            iterations_range=(3, 3),
            maps_range=(10, 15),
            reduces_range=(3, 5),
            work_range=(1, 4),
            fanin_range=(1, 3),
        )
        defaults.update(kw)
        return IRParams(**defaults)

    def test_connectivity_invariants(self, rng):
        job = generate_ir(self.params(), 4, "layered", rng)
        # Single weakly-connected workflow: every non-first-iteration
        # task has a parent; every non-last-phase task has a child.
        in_deg = job.in_degrees()
        out_deg = job.out_degrees()
        # Sources are exactly the first iteration's maps.
        sources = job.sources()
        assert np.all(job.depth[sources] == 0)
        # Nothing except last-iteration reduces... every map feeds a
        # reduce, every reduce (except final) feeds a map.
        sinks = job.sinks()
        assert sinks.size > 0

    def test_layered_phases_share_type(self, rng):
        job = generate_ir(self.params(), 4, "layered", rng)
        # Phases alternate map/reduce; tasks in one phase share a type.
        # Identify phases via topology: sources = phase 0.
        # (The generator guarantees phase-contiguous ids.)
        # Verify by checking that types change only at phase boundaries:
        types = job.types
        changes = np.flatnonzero(np.diff(types) != 0)
        # 3 iterations -> 6 phases -> at most 5 type changes.
        assert changes.size <= 5

    def test_reduce_fanin_in_range(self, rng):
        job = generate_ir(self.params(), 2, "layered", rng)
        # Reduces of the first iteration have fanin within range
        # (+0 extra from the every-map-feeds-a-reduce patch-up makes
        # them possibly larger, never smaller).
        in_deg = job.in_degrees()
        first_reduce_mask = np.zeros(job.n_tasks, dtype=bool)
        # First iteration reduces: tasks whose parents are all sources.
        for v in range(job.n_tasks):
            parents = job.parents(v)
            if parents.size and all(job.n_parents(int(p)) == 0 for p in parents):
                first_reduce_mask[v] = True
        assert np.all(in_deg[first_reduce_mask] >= 1)

    def test_random_types_uniformish(self, rng):
        job = generate_ir(self.params(maps_range=(40, 40)), 4, "random", rng)
        counts = np.bincount(job.types, minlength=4)
        assert np.all(counts > 0)

    def test_k1(self, rng):
        job = generate_ir(self.params(), 1, "layered", rng)
        assert np.all(job.types == 0)

    def test_total_type_work_matches_bincount(self, rng):
        job = generate_ir(self.params(), 3, "random", rng)
        tw = type_work(job)
        assert tw.sum() == pytest.approx(float(job.work.sum()))
