"""Unit tests for the Cosmos/Scope stage-workflow generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.cosmos import CosmosParams, generate_cosmos
from repro.workloads.generator import EXTRA_CELLS, sample_instance, workload_cell
from repro.workloads.params import WorkloadSpec


def small_params(**kw):
    defaults = dict(
        stages_range=(5, 8),
        stage_width_range=(2, 10),
        work_range=(1, 4),
    )
    defaults.update(kw)
    return CosmosParams(**defaults)


class TestParams:
    def test_defaults_valid(self):
        CosmosParams()

    def test_bad_shuffle_prob(self):
        with pytest.raises(ConfigurationError):
            CosmosParams(shuffle_prob=1.5)

    def test_bad_parents(self):
        with pytest.raises(ConfigurationError):
            CosmosParams(max_stage_parents=0)

    def test_bad_fanin(self):
        with pytest.raises(ConfigurationError):
            CosmosParams(shuffle_fanin=0)


class TestGenerator:
    def test_acyclic_and_connected_stages(self, rng):
        job = generate_cosmos(small_params(), 4, "layered", rng)
        # Acyclic by KDag construction; after stage 0 every task
        # belongs to a stage that reads an earlier one, so only the
        # first stage can hold sources... stages' tasks share sources.
        assert job.n_tasks > 5
        assert job.sources().size >= 1

    def test_layered_stages_share_type(self, rng):
        job = generate_cosmos(small_params(), 4, "layered", rng)
        # Tasks with identical parent sets within a stage share a type;
        # verify type-count is bounded by the stage count upper bound.
        # (Stage boundaries = contiguous id blocks in this generator.)
        types = job.types
        changes = int(np.sum(np.diff(types) != 0))
        assert changes <= 8  # at most one change per stage boundary

    def test_random_structure_mixes_types(self, rng):
        job = generate_cosmos(
            small_params(stage_width_range=(20, 30)), 4, "random", rng
        )
        # A single wide stage nearly surely holds several types.
        first_stage = job.types[:20]
        assert len(set(first_stage.tolist())) > 1

    def test_work_range(self, rng):
        job = generate_cosmos(small_params(), 3, "layered", rng)
        assert job.work.min() >= 1 and job.work.max() <= 4

    def test_no_duplicate_edges(self, rng):
        job = generate_cosmos(small_params(shuffle_prob=1.0), 2, "layered", rng)
        pairs = {tuple(e) for e in job.edges}
        assert len(pairs) == job.n_edges

    def test_unknown_structure(self, rng):
        with pytest.raises(ConfigurationError):
            generate_cosmos(small_params(), 2, "sorted", rng)

    def test_k1(self, rng):
        job = generate_cosmos(small_params(), 1, "layered", rng)
        assert np.all(job.types == 0)


class TestCells:
    def test_extra_cells_resolvable(self):
        for name in EXTRA_CELLS:
            assert workload_cell(name).family == "cosmos"

    def test_sampling_extra_cell(self, rng):
        job, system = sample_instance(workload_cell("medium-layered-cosmos"), rng)
        assert job.num_types == system.num_types == 4

    def test_schedulable(self, rng):
        from repro import make_scheduler, simulate, validate_schedule

        job, system = sample_instance(
            WorkloadSpec("cosmos", "layered", "small", params=small_params()),
            rng,
        )
        res = simulate(job, system, make_scheduler("mqb"),
                       rng=np.random.default_rng(0), record_trace=True)
        validate_schedule(job, system, res.trace, res.makespan)
