"""Unit tests for the speed-heterogeneity extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, make_scheduler
from repro.errors import ResourceError
from repro.hetspeed import SpeedSystem, simulate_speeds, speed_lower_bound


class TestSpeedSystem:
    def test_basic(self):
        s = SpeedSystem(((1.0, 2.0), (4.0,)))
        assert s.num_types == 2
        assert s.counts == (2, 1)
        assert s.total_speed(0) == 3.0
        assert s.max_speed(0) == 2.0  # pools sorted descending

    def test_sorted_descending(self):
        s = SpeedSystem(((1.0, 3.0, 2.0),))
        assert s.speeds[0] == (3.0, 2.0, 1.0)

    def test_uniform_factory(self):
        s = SpeedSystem.uniform((2, 3), speed=2.0)
        assert s.counts == (2, 3)
        assert all(x == 2.0 for pool in s.speeds for x in pool)

    def test_sample_factory(self, rng):
        s = SpeedSystem.sample((3, 3), rng, speed_range=(0.5, 2.0))
        assert all(0.5 <= x <= 2.0 for pool in s.speeds for x in pool)

    def test_empty_rejected(self):
        with pytest.raises(ResourceError):
            SpeedSystem(())
        with pytest.raises(ResourceError):
            SpeedSystem(((),))

    def test_bad_speed_rejected(self):
        with pytest.raises(ResourceError):
            SpeedSystem(((0.0,),))
        with pytest.raises(ResourceError):
            SpeedSystem(((float("inf"),),))

    def test_resource_config_view(self):
        assert SpeedSystem(((1.0,), (1.0, 1.0))).as_resource_config().counts == (1, 2)


class TestLowerBound:
    def test_work_term(self):
        job = KDag(types=[0] * 4, work=[2.0] * 4)
        system = SpeedSystem(((2.0, 2.0),))
        # 8 work over total speed 4 -> 2.
        assert speed_lower_bound(job, system) == 2.0

    def test_span_term_uses_fastest(self):
        job = KDag(types=[0, 0], work=[4.0, 4.0], edges=[(0, 1)])
        system = SpeedSystem(((1.0, 4.0),))
        # Chain at speed 4: 1 + 1 = 2; work term 8/5 = 1.6.
        assert speed_lower_bound(job, system) == 2.0

    def test_k_mismatch(self):
        job = KDag(types=[0], work=[1.0])
        with pytest.raises(ResourceError):
            speed_lower_bound(job, SpeedSystem(((1.0,), (1.0,))))


class TestEngine:
    def test_single_task_uses_fastest(self):
        job = KDag(types=[0], work=[6.0])
        system = SpeedSystem(((1.0, 3.0),))
        res = simulate_speeds(job, system, make_scheduler("kgreedy"))
        assert res.makespan == 2.0  # 6 / 3

    def test_unit_speeds_match_plain_engine(self, rng):
        from tests.conftest import make_random_job
        from repro import ResourceConfig, simulate

        for i in range(3):
            job = make_random_job(rng, n=25, k=2)
            plain = simulate(job, ResourceConfig((2, 2)), make_scheduler("lspan"))
            speedy = simulate_speeds(
                job, SpeedSystem.uniform((2, 2)), make_scheduler("lspan")
            )
            assert speedy.makespan == pytest.approx(plain.makespan)

    def test_two_tasks_fast_and_slow(self):
        job = KDag(types=[0, 0], work=[6.0, 6.0])
        system = SpeedSystem(((3.0, 1.0),))
        res = simulate_speeds(job, system, make_scheduler("kgreedy"),
                              record_trace=True)
        # One task at speed 3 (2s), one at speed 1 (6s), in parallel.
        assert res.makespan == 6.0

    def test_faster_pool_shortens_makespan(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=30, k=2)
        slow = simulate_speeds(
            job, SpeedSystem.uniform((2, 2), 1.0), make_scheduler("mqb"),
            rng=np.random.default_rng(0),
        )
        fast = simulate_speeds(
            job, SpeedSystem.uniform((2, 2), 2.0), make_scheduler("mqb"),
            rng=np.random.default_rng(0),
        )
        assert fast.makespan == pytest.approx(slow.makespan / 2.0)

    def test_ratio_at_least_one(self, rng):
        from tests.conftest import make_random_job

        for name in ("kgreedy", "mqb", "lspan"):
            job = make_random_job(rng, n=25, k=3)
            system = SpeedSystem.sample((2, 2, 2), rng)
            res = simulate_speeds(job, system, make_scheduler(name),
                                  rng=np.random.default_rng(1))
            assert res.completion_time_ratio() >= 1.0 - 1e-9

    def test_trace_recorded(self):
        job = KDag(types=[0, 1], work=[2.0, 3.0], edges=[(0, 1)], num_types=2)
        system = SpeedSystem(((2.0,), (1.0,)))
        res = simulate_speeds(job, system, make_scheduler("kgreedy"),
                              record_trace=True)
        assert res.trace is not None
        assert len(res.trace) == 2
        assert res.makespan == 4.0  # 1 + 3
