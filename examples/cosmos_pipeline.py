#!/usr/bin/env python
"""Cosmos/Scope-style data-analytics workflow (the paper's motivation).

The paper motivates K-DAG scheduling with Cosmos, the map-reduce style
framework behind Bing: a Scope job compiles to a DAG of stages, each
stage is a set of data-parallel tasks, and servers are clustered into
classes by data placement — the server classes act as functional types
because tasks are not assigned across classes.

This example synthesizes such a workflow: extract stages on two input
server classes, repartition onto a compute class, a join, aggregation,
and an output stage — then shows how much of KGreedy's completion time
MQB recovers, and *why*, via the per-type utilization timeline.

Run: ``python examples/cosmos_pipeline.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    KDagBuilder,
    ResourceConfig,
    make_scheduler,
    simulate,
    utilization_profile,
)

# Server classes (functional types): two storage pods with different
# datasets, one compute pod, one serving/output pod.
PODS = ["storage-A", "storage-B", "compute", "serving"]
POD_A, POD_B, COMPUTE, SERVING = range(4)


def build_scope_job(rng: np.random.Generator) -> "repro.KDag":
    """EXTRACT a,b -> PARTITION -> JOIN -> AGGREGATE -> OUTPUT."""
    b = KDagBuilder(num_types=4)

    extract_a = [
        b.add_task(POD_A, float(rng.integers(2, 7)), label=f"extract-a-{i}")
        for i in range(24)
    ]
    extract_b = [
        b.add_task(POD_B, float(rng.integers(2, 7)), label=f"extract-b-{i}")
        for i in range(24)
    ]

    # Repartition: each compute partition reads a few extract outputs
    # of each side (data shuffling).
    partitions = []
    for i in range(16):
        p = b.add_task(COMPUTE, float(rng.integers(3, 9)), label=f"part-{i}")
        for src in rng.choice(extract_a, size=3, replace=False):
            b.add_edge(int(src), p)
        for src in rng.choice(extract_b, size=3, replace=False):
            b.add_edge(int(src), p)
        partitions.append(p)

    joins = []
    for i in range(8):
        j = b.add_task(COMPUTE, float(rng.integers(4, 10)), label=f"join-{i}")
        b.add_edge(partitions[2 * i], j)
        b.add_edge(partitions[2 * i + 1], j)
        joins.append(j)

    aggs = []
    for i in range(4):
        a = b.add_task(COMPUTE, float(rng.integers(3, 7)), label=f"agg-{i}")
        b.add_edge(joins[2 * i], a)
        b.add_edge(joins[2 * i + 1], a)
        aggs.append(a)

    out = b.add_task(SERVING, 6.0, label="publish")
    for a in aggs:
        b.add_edge(a, out)
    return b.build()


def sparkline(row: np.ndarray) -> str:
    blocks = " .:-=+*#%@"
    idx = np.clip((row * (len(blocks) - 1)).round().astype(int), 0, len(blocks) - 1)
    return "".join(blocks[i] for i in idx)


def main() -> None:
    rng = np.random.default_rng(7)
    job = build_scope_job(rng)
    system = ResourceConfig((6, 6, 4, 1))

    print(f"Scope job: {job.n_tasks} tasks, {job.n_edges} edges, "
          f"{job.num_types} server classes\n")

    results = {}
    for name in ("kgreedy", "mqb"):
        results[name] = simulate(
            job, system, make_scheduler(name),
            rng=np.random.default_rng(0), record_trace=True,
        )

    kg, mqb = results["kgreedy"], results["mqb"]
    print(f"KGreedy completion time: {kg.makespan:g} "
          f"(ratio {kg.completion_time_ratio():.2f})")
    print(f"MQB     completion time: {mqb.makespan:g} "
          f"(ratio {mqb.completion_time_ratio():.2f})")
    saved = 1 - mqb.makespan / kg.makespan
    print(f"MQB saves {saved:.0%} of KGreedy's completion time\n")

    for name, res in results.items():
        print(f"{name} utilization timeline (rows = server classes):")
        _, prof = utilization_profile(res.trace, system, n_bins=48)
        for alpha, pod in enumerate(PODS):
            print(f"  {pod:10s} |{sparkline(prof[alpha])}|")
        print()


if __name__ == "__main__":
    main()
