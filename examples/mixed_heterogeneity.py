#!/usr/bin/env python
"""Both heterogeneity axes at once: typed pools of mixed-speed machines.

The paper separates *functional* heterogeneity (typed tasks — what it
studies) from *performance* heterogeneity (different speeds — prior
work).  A real cluster has both: each server class contains several
hardware generations.  This example runs the paper's layered EP
workload on typed pools whose processor speeds spread from 0.5x to
2x, and asks whether the paper's conclusion — utilization balancing
beats online greedy — survives the composition.

Run: ``python examples/mixed_heterogeneity.py``
"""

from __future__ import annotations

import numpy as np

from repro import PAPER_ALGORITHMS, make_scheduler
from repro.hetspeed import SpeedSystem, simulate_speeds
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

N_JOBS = 10


def main() -> None:
    spec = WORKLOAD_CELLS["small-layered-ep"]
    print(f"workload: {spec.label}; per-processor speeds U(0.5, 2.0)\n")
    print(f"{'algorithm':10s} {'uniform speeds':>14s} {'mixed speeds':>13s}")

    for name in PAPER_ALGORITHMS:
        uniform, mixed = [], []
        for i in range(N_JOBS):
            rng = np.random.default_rng(1000 + i)
            job, counts = sample_instance(spec, rng)
            flat = SpeedSystem.uniform(counts.counts)
            speedy = SpeedSystem.sample(counts.counts, rng)
            uniform.append(
                simulate_speeds(job, flat, make_scheduler(name),
                                rng=np.random.default_rng(i))
                .completion_time_ratio()
            )
            mixed.append(
                simulate_speeds(job, speedy, make_scheduler(name),
                                rng=np.random.default_rng(i))
                .completion_time_ratio()
            )
        print(f"{name:10s} {np.mean(uniform):14.3f} {np.mean(mixed):13.3f}")

    print(
        "\nThe paper's conclusion survives the composition: the online"
        "\ngreedy stays far above the balancing heuristics, with the same"
        "\nordering among heuristics on both speed profiles.  (Ratios dip"
        "\nslightly under mixed speeds because the lower bound's work term"
        "\ncharges the pool's *total* speed, which phase-serialized"
        "\nschedules cannot exploit anyway.)"
    )


if __name__ == "__main__":
    main()
