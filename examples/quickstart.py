#!/usr/bin/env python
"""Quickstart: build a K-DAG, schedule it six ways, inspect the result.

This walks the library's whole public surface in ~60 lines:

1. build a small heterogeneous job with :class:`KDagBuilder`
   (CPU/GPU/IO pipeline branches contending for one CPU),
2. run the paper's six algorithms on a small system — MQB alone
   reaches the lower bound, because only its typed descendant values
   reveal which CPU task unlocks which starved accelerator,
3. print completion times, ratios against the lower bound ``L(J)``,
   and the per-type utilization of the best schedule.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    KDagBuilder,
    PAPER_ALGORITHMS,
    ResourceConfig,
    average_utilization,
    lower_bound,
    make_scheduler,
    simulate,
    span,
    type_work,
)

CPU, GPU, IO = 0, 1, 2


def build_pipeline() -> "repro.KDag":
    """Eight prep -> accelerate -> merge branches sharing one CPU.

    Every branch starts with a CPU prep task; half the branches then
    need the GPU, half the IO channel.  The GPU-feeding branches are
    declared first, so an uninformed FIFO scheduler drains the CPU
    queue in declaration order and starves the IO channel for the
    first half of the run — only a scheduler that looks at *which
    types* a task's descendants need can interleave the two
    accelerators from the start.
    """
    b = KDagBuilder(num_types=3)
    for i, mid_type in enumerate((GPU,) * 4 + (IO,) * 4):
        prep = b.add_task(CPU, work=3.0, label=f"prep-{i}")
        mid = b.add_task(mid_type, work=6.0, label=f"accel-{i}")
        merge = b.add_task(CPU, work=1.0, label=f"merge-{i}")
        b.add_edge(prep, mid)
        b.add_edge(mid, merge)
    return b.build()


def main() -> None:
    job = build_pipeline()
    system = ResourceConfig((1, 1, 1))  # one CPU, one GPU, one IO channel

    print(f"job: {job}")
    print(f"per-type work T1(J, a): {type_work(job)}")
    print(f"span T_inf(J):          {span(job):g}")
    bound = lower_bound(job, system.as_array())
    print(f"lower bound L(J):       {bound:g}\n")

    print(f"{'algorithm':10s} {'makespan':>9s} {'ratio':>7s}")
    best = None
    for name in PAPER_ALGORITHMS:
        result = simulate(
            job, system, make_scheduler(name),
            rng=np.random.default_rng(0), record_trace=True,
        )
        print(
            f"{name:10s} {result.makespan:9.1f} "
            f"{result.completion_time_ratio():7.3f}"
        )
        if best is None or result.makespan < best.makespan:
            best = result

    util = average_utilization(best.trace, system, best.makespan)
    print(f"\nbest schedule: {best.scheduler} (makespan {best.makespan:g})")
    for alpha, name in enumerate(("CPU", "GPU", "IO")):
        print(f"  {name} utilization: {util[alpha]:.0%}")


if __name__ == "__main__":
    main()
