#!/usr/bin/env python
"""The Theorem-2 adversary in action: why online scheduling loses Θ(K).

Builds the paper's Fig.-2 job family for growing K, runs online
KGreedy against the construction's known offline optimum
``T* = K - 1 + m * P_K``, and prints the empirical expected ratio next
to the finite-m and asymptotic lower bounds — the ratio climbs
linearly with K, exactly the degradation Theorem 2 predicts.

Run: ``python examples/online_lower_bound.py``
"""

from __future__ import annotations

import numpy as np

from repro import ResourceConfig, make_scheduler, simulate
from repro.theory.bounds import (
    randomized_online_lower_bound,
    randomized_online_lower_bound_finite_m,
)
from repro.workloads.adversarial import (
    adversarial_job,
    adversarial_optimal_makespan,
)

P_PER_TYPE = 2
M = 10
TRIALS = 25


def main() -> None:
    print(f"adversarial family with P_alpha = {P_PER_TYPE}, m = {M}, "
          f"{TRIALS} trials per K\n")
    print(f"{'K':>2s} {'tasks':>7s} {'KGreedy E[T]/T*':>16s} "
          f"{'bound(m)':>9s} {'bound(inf)':>10s} {'K+1':>4s}")
    for k in range(1, 6):
        procs = (P_PER_TYPE,) * k
        opt = adversarial_optimal_makespan(procs, M)
        ratios = []
        n_tasks = 0
        for trial in range(TRIALS):
            job = adversarial_job(procs, M, np.random.default_rng(1000 * k + trial))
            n_tasks = job.n_tasks
            res = simulate(job, ResourceConfig(procs), make_scheduler("kgreedy"))
            ratios.append(res.makespan / opt)
        print(
            f"{k:2d} {n_tasks:7d} {np.mean(ratios):16.3f} "
            f"{randomized_online_lower_bound_finite_m(procs, M):9.3f} "
            f"{randomized_online_lower_bound(procs):10.3f} {k + 1:4d}"
        )

    print(
        "\nThe empirical ratio sits between the finite-m lower bound and"
        "\nthe K+1 guarantee, growing linearly in K: no online algorithm"
        "\ncan interleave task types it cannot see."
    )


if __name__ == "__main__":
    main()
