#!/usr/bin/env python
"""JIT-compiled flexible tasks — the paper's Section-VII open problem.

"With the support of JIT, a task can be compiled to different binaries
at run time and flexibly executed on different types of resources."
This example lifts a layered EP job into that model with
:meth:`FlexDag.from_kdag`: a fraction of tasks gain fallback binaries
on every other type at 1.5x their native cost.  It then sweeps the
flexible fraction and compares two dispatchers:

* ``flexgreedy`` — earliest-finish greedy over (task, type) pairs;
* ``flexmqb``   — MQB's balancing idea lifted to type selection.

Expected shape: even a modest flexible fraction recovers much of the
completion time the rigid model loses to phase serialization — and at
high flexibility, *greedy beats balancing*, because paying 1.5x for a
fallback binary is often better than waiting for the native type, a
trade-off pure backlog-balancing underweights.

Run: ``python examples/jit_flexible.py``
"""

from __future__ import annotations

import numpy as np

from repro import make_scheduler, simulate
from repro.flexible import FlexDag, FlexGreedy, FlexMQB, simulate_flexible
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

PENALTY = 1.5
FRACTIONS = (0.0, 0.1, 0.3, 0.6, 1.0)
N_JOBS = 5


def main() -> None:
    spec = WORKLOAD_CELLS["small-layered-ep"]
    print(f"workload: {spec.label}; fallback binaries cost {PENALTY}x native\n")
    print(f"{'flexible %':>10s} {'flexgreedy':>11s} {'flexmqb':>9s} "
          f"{'rigid mqb':>10s}")

    for frac in FRACTIONS:
        greedy, balanced, rigid = [], [], []
        for i in range(N_JOBS):
            job, system = sample_instance(spec, np.random.default_rng(500 + i))
            flex = FlexDag.from_kdag(
                job, flexibility=frac,
                rng=np.random.default_rng(i), penalty=PENALTY,
            )
            greedy.append(
                simulate_flexible(flex, system, FlexGreedy()).makespan
            )
            balanced.append(
                simulate_flexible(flex, system, FlexMQB()).makespan
            )
            rigid.append(
                simulate(job, system, make_scheduler("mqb"),
                         rng=np.random.default_rng(i)).makespan
            )
        print(
            f"{frac:10.0%} {np.mean(greedy):11.1f} {np.mean(balanced):9.1f} "
            f"{np.mean(rigid):10.1f}"
        )

    print(
        "\nEven partial JIT flexibility beats the best rigid-model schedule:"
        "\nthe scheduler can route around the starved resource type instead"
        "\nof waiting for it."
    )


if __name__ == "__main__":
    main()
