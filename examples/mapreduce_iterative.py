#!/usr/bin/env python
"""Iterative MapReduce on a heterogeneous cluster (paper's IR workload).

Samples a medium layered IR job — the workload where the paper's
Fig. 4(f) shows the biggest spread between heuristics — and runs the
full algorithm lineup, non-preemptively and preemptively, printing the
two comparison tables side by side (a one-job slice of Figs. 4(f) and
7(c)).

Run: ``python examples/mapreduce_iterative.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    PAPER_ALGORITHMS,
    make_scheduler,
    simulate,
    simulate_preemptive,
)
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance


def main() -> None:
    rng = np.random.default_rng(2011)
    spec = WORKLOAD_CELLS["medium-layered-ir"]
    job, system = sample_instance(spec, rng)

    print(f"workload: {spec.label}")
    print(f"instance: {job.n_tasks} tasks, {job.n_edges} edges, "
          f"system {system.counts}\n")

    print(f"{'algorithm':10s} {'non-preemptive':>15s} {'preemptive':>11s}")
    for name in PAPER_ALGORITHMS:
        np_res = simulate(
            job, system, make_scheduler(name), rng=np.random.default_rng(1)
        )
        p_res = simulate_preemptive(
            job, system, make_scheduler(name), rng=np.random.default_rng(1)
        )
        print(
            f"{name:10s} {np_res.completion_time_ratio():15.3f} "
            f"{p_res.completion_time_ratio():11.3f}"
        )

    print(
        "\nExpected shape (paper Fig. 4(f), 7(c)): KGreedy worst, MQB and"
        "\nMaxDP best, preemption changing little."
    )


if __name__ == "__main__":
    main()
