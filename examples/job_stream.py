#!/usr/bin/env python
"""Scheduling a stream of jobs on a shared cluster (beyond the paper).

The paper's Cosmos motivation runs "over a thousand jobs" a day, but
its algorithms schedule one job in isolation.  This example simulates
what operators actually face: K-DAG jobs arriving as a Poisson stream
on one shared FHS, comparing four stream policies on both objectives —
mean flow time (what users feel) and stream makespan (what the cluster
bill feels):

* global-kgreedy — job-blind FIFO over each type's pool,
* job-fcfs      — strict arrival-order priority,
* srpt          — least-remaining-work job first,
* global-mqb    — the paper's utilization balancing over the union
                  of all jobs' ready queues.

Run: ``python examples/job_stream.py``
"""

from __future__ import annotations

import numpy as np

from repro.multijob import (
    GlobalKGreedy,
    GlobalMQB,
    JobFCFS,
    SmallestRemainingFirst,
    poisson_stream,
    simulate_stream,
)
from repro.system.resources import medium_system
from repro.workloads.params import IRParams, WorkloadSpec

POLICIES = (GlobalKGreedy, JobFCFS, SmallestRemainingFirst, GlobalMQB)

SPEC = WorkloadSpec(
    "ir", "layered", "medium",
    params=IRParams(
        iterations_range=(4, 6), maps_range=(20, 40), reduces_range=(6, 10)
    ),
)


def main() -> None:
    system = medium_system(4, 12)
    print(f"system: {system.counts}; workload: {SPEC.label}\n")

    for load, mean_gap in (("light", 80.0), ("heavy", 20.0)):
        stream = poisson_stream(
            SPEC, n_jobs=10, mean_interarrival=mean_gap,
            rng=np.random.default_rng(7),
        )
        print(f"{load} load (mean interarrival {mean_gap:g}):")
        print(f"  {'policy':16s} {'mean flow':>10s} {'makespan':>9s}")
        for cls in POLICIES:
            result = simulate_stream(stream, system, cls())
            print(
                f"  {cls.name:16s} {result.mean_flow_time:10.1f} "
                f"{result.makespan:9.1f}"
            )
        print()

    print(
        "Typical shape: srpt wins mean flow time under heavy load (short"
        "\njobs escape the queue), global-mqb wins stream makespan (the"
        "\ncluster's types stay busy), and strict FCFS pays on both."
    )


if __name__ == "__main__":
    main()
