#!/usr/bin/env python
"""How much lookahead does MQB actually need? (paper Section V-G)

In practice a scheduler rarely has the exact future DAG: descendant
workloads come from historical statistics, compiler estimates or user
annotations.  This example runs MQB's six information variants —
{full, one-step lookahead} x {precise, exponential noise, mult+add
noise} — on one EP job and one tree job, reproducing the punchlines of
paper Fig. 8:

* trees forgive one-step and noisy estimates,
* EP needs global (full-recursion) information,
* even ~2x-off estimates beat information-free KGreedy.

Run: ``python examples/approximate_information.py``
"""

from __future__ import annotations

import numpy as np

from repro import make_scheduler, simulate
from repro.schedulers.registry import APPROX_INFO_ALGORITHMS
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

N_REPEATS = 10  # stochastic info models: average over noise draws


def run_cell(cell: str) -> None:
    spec = WORKLOAD_CELLS[cell]
    job, system = sample_instance(spec, np.random.default_rng(99))
    print(f"{spec.label}: {job.n_tasks} tasks on {system.counts}")
    print(f"  {'variant':18s} {'avg ratio':>9s}")
    for name in APPROX_INFO_ALGORITHMS:
        ratios = []
        for rep in range(N_REPEATS):
            res = simulate(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(rep),
            )
            ratios.append(res.completion_time_ratio())
        print(f"  {name:18s} {np.mean(ratios):9.3f}")
    print()


def main() -> None:
    run_cell("small-layered-ep")
    run_cell("medium-layered-tree")


if __name__ == "__main__":
    main()
